package core

import (
	"errors"
	"math"

	"repro/internal/dsp"
	"repro/internal/hrtf"
)

// This file implements the hearing-aid application §4.5 motivates:
// "earphones could serve as hearing aids, and beamform in the direction of
// a desired speech signal; thus, Alice and Bob could listen to each other
// more clearly by wearing headphones in a noisy bar." With only two
// microphones the achievable gain is modest, but an HRTF-aware filter-and-
// sum beats naive delay-and-sum because the personalized HRIRs describe
// exactly how the target direction reaches each ear.

// BeamformOptions tunes the binaural enhancer.
type BeamformOptions struct {
	// Reg is the Tikhonov regularization of the matched-filter inversion
	// (default 5e-2). Larger values are more robust to HRTF error.
	Reg float64
	// NullAngleDeg, when non-nil, steers a spatial null at a known
	// interferer direction (e.g. estimated with EstimateAoAUnknown).
	// With two microphones one null is the most the array affords, but
	// it buys far more rejection than blind matched combining.
	NullAngleDeg *float64
	// AdaptiveNull refines NullAngleDeg by scanning ±12° around it and
	// keeping the placement that minimizes output power — the classic
	// power-minimization criterion, which absorbs AoA-estimation error.
	AdaptiveNull bool
}

// BeamformToward enhances the signal arriving from angleDeg by HRTF-aware
// matched-filter combining: per frequency bin, the two ear spectra are
// combined with the conjugate steering vector given by the personalized
// HRIRs of the target direction,
//
//	S(f) = (H_L*(f)·Y_L(f) + H_R*(f)·Y_R(f)) / (|H_L(f)|² + |H_R(f)|² + ε)
//
// which sums the target coherently while sources from other directions —
// whose interaural structure mismatches the steering vector — combine
// incoherently. The output is a mono estimate of the target source.
func BeamformToward(left, right []float64, angleDeg float64, table *hrtf.Table, opt BeamformOptions) ([]float64, error) {
	if table == nil || table.NumAngles() == 0 {
		return nil, ErrEmptyTable
	}
	if len(left) == 0 || len(right) == 0 {
		return nil, errors.New("core: beamforming needs two channels")
	}
	if opt.Reg <= 0 {
		opt.Reg = 5e-2
	}
	if opt.AdaptiveNull && opt.NullAngleDeg != nil {
		refined := refineNull(left, right, angleDeg, *opt.NullAngleDeg, table, opt)
		opt.NullAngleDeg = &refined
		opt.AdaptiveNull = false
	}
	h, err := table.FarAt(angleDeg)
	if err != nil {
		return nil, err
	}
	if h.Empty() {
		return nil, errors.New("core: no HRIR at the target angle")
	}
	n := len(left)
	if len(right) > n {
		n = len(right)
	}
	m := dsp.NextPow2(n + len(h.Left))
	fyL := dsp.FFTReal(dsp.ZeroPad(left, m))
	fyR := dsp.FFTReal(dsp.ZeroPad(right, m))
	fhL := dsp.FFTReal(dsp.ZeroPad(h.Left, m))
	fhR := dsp.FFTReal(dsp.ZeroPad(h.Right, m))
	// Regularize against the peak steering power so spectral nulls of
	// the HRIRs do not blow up.
	maxPow := 0.0
	for i := range fhL {
		p := sqAbs(fhL[i]) + sqAbs(fhR[i])
		if p > maxPow {
			maxPow = p
		}
	}
	eps := opt.Reg * maxPow
	if eps == 0 {
		eps = 1e-30
	}
	var fnL, fnR []complex128
	if opt.NullAngleDeg != nil {
		hn, err := table.FarAt(*opt.NullAngleDeg)
		if err != nil {
			return nil, err
		}
		if !hn.Empty() {
			fnL = dsp.FFTReal(dsp.ZeroPad(hn.Left, m))
			fnR = dsp.FFTReal(dsp.ZeroPad(hn.Right, m))
		}
	}
	spec := make([]complex128, m)
	for i := range spec {
		wL, wR := conj(fhL[i]), conj(fhR[i])
		if fnL != nil {
			// Project the steering vector orthogonal to the
			// interferer's: w = d_t - (d_i^H d_t / |d_i|^2) d_i. The
			// projection uses only a hair of regularization — softening
			// it would soften the null, which is the whole point.
			den := sqAbs(fnL[i]) + sqAbs(fnR[i]) + 1e-9*maxPow
			g := (conj(fnL[i])*fhL[i] + conj(fnR[i])*fhR[i]) / complex(den, 0)
			wL = conj(fhL[i] - g*fnL[i])
			wR = conj(fhR[i] - g*fnR[i])
		}
		num := wL*fyL[i] + wR*fyR[i]
		// Unity gain toward the target: divide by w^H d_t.
		den := wL*fhL[i] + wR*fhR[i]
		spec[i] = num * conj(den) / complex(sqAbs(den)+eps*eps, 0)
	}
	td := dsp.IFFTReal(spec)
	return td[:n], nil
}

// refineNull scans candidate null placements around the hint and returns
// the one minimizing the beamformed output power: the true interferer
// direction removes the most energy.
func refineNull(left, right []float64, targetDeg, hintDeg float64, table *hrtf.Table, opt BeamformOptions) float64 {
	best, bestPow := hintDeg, math.Inf(1)
	probe := opt
	probe.AdaptiveNull = false
	for d := hintDeg - 12; d <= hintDeg+12; d += 3 {
		cand := dsp.Clamp(d, table.MinAngle, table.MaxAngle())
		if math.Abs(cand-targetDeg) < 10 {
			continue // never null the target itself
		}
		probe.NullAngleDeg = &cand
		out, err := BeamformToward(left, right, targetDeg, table, probe)
		if err != nil {
			continue
		}
		if p := dsp.Energy(out); p < bestPow {
			bestPow, best = p, cand
		}
	}
	return best
}

func sqAbs(c complex128) float64 { return real(c)*real(c) + imag(c)*imag(c) }

func conj(c complex128) complex128 { return complex(real(c), -imag(c)) }

// BeamformGain measures the SNR improvement (dB) the beamformer provides
// for a unit test scenario: clean is the target source signal, and the
// mixed ear recordings contain the target plus interference. It compares
// the correlation-derived SNR of the beamformed output against the better
// of the two raw ears.
func BeamformGain(clean, left, right, enhanced []float64) float64 {
	rawL := correlationSNR(clean, left)
	rawR := correlationSNR(clean, right)
	raw := math.Max(rawL, rawR)
	return correlationSNR(clean, enhanced) - raw
}

// correlationSNR estimates the SNR (dB) of a degraded signal w.r.t. a clean
// reference using the peak normalized correlation: SNR = c²/(1−c²).
func correlationSNR(clean, degraded []float64) float64 {
	c, _ := dsp.NormXCorrPeak(clean, degraded)
	c = math.Abs(c)
	if c >= 0.999999 {
		return 60
	}
	if c <= 0 {
		return -60
	}
	return 10 * math.Log10(c*c/(1-c*c))
}
