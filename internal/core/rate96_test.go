package core

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/hrtf"
	"repro/internal/sim"
)

// TestPipelineAtPaperSampleRate runs the whole pipeline at the paper's
// 96 kHz recording rate, confirming nothing in the stack assumes 48 kHz.
func TestPipelineAtPaperSampleRate(t *testing.T) {
	if testing.Short() {
		t.Skip("96 kHz pipeline run")
	}
	v := sim.NewVolunteer(1, 9600)
	s, err := sim.RunSession(v, sim.SessionConfig{SampleRate: 96000, NumStops: 25})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Personalize(sessionInput(s), PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Table.SampleRate != 96000 {
		t.Fatalf("table rate %g", p.Table.SampleRate)
	}
	gnd, err := sim.MeasureGroundTruthFar(v, 96000, 10)
	if err != nil {
		t.Fatal(err)
	}
	glob, err := sim.GlobalTemplateFar(96000, 10)
	if err != nil {
		t.Fatal(err)
	}
	var uniqCorr, globCorr float64
	n := 0
	for a := 0.0; a <= 180; a += 10 {
		ref, err := gnd.FarAt(a)
		if err != nil || ref.Empty() {
			continue
		}
		uh, err1 := p.Table.FarAt(a)
		gh, err2 := glob.FarAt(a)
		if err1 != nil || err2 != nil || uh.Empty() || gh.Empty() {
			continue
		}
		uniqCorr += hrtf.MeanCorrelation(uh, ref)
		globCorr += hrtf.MeanCorrelation(gh, ref)
		n++
	}
	uniqCorr /= float64(n)
	globCorr /= float64(n)
	t.Logf("96 kHz: UNIQ %.3f vs global %.3f", uniqCorr, globCorr)
	if uniqCorr <= globCorr {
		t.Errorf("personalization gain lost at 96 kHz: %.3f vs %.3f", uniqCorr, globCorr)
	}
	// Track sanity at the higher rate.
	med := 0.0
	for i, m := range s.Measurements {
		med += geom.AngleDiffDeg(p.TrackDeg[i], m.TrueAngleDeg) / float64(len(s.Measurements))
	}
	if med > 8 {
		t.Errorf("mean localization error %.1f° at 96 kHz", med)
	}
}
