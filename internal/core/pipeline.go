package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/head"
	"repro/internal/hrtf"
	"repro/internal/imu"
)

// SessionInput is what a deployment feeds the pipeline: everything here is
// observable by a real phone + earbud system.
type SessionInput struct {
	// Probe is the known played signal.
	Probe []float64
	// SampleRate of all audio, Hz.
	SampleRate float64
	// Stops holds the per-stop stereo recordings, in sweep order.
	Stops []StopRecording
	// IMU is the gyro log of the whole sweep.
	IMU []imu.Sample
	// SystemIR is the measured speaker–mic response (may be nil).
	SystemIR []float64
	// SyncOffset is the calibrated playback latency, seconds.
	SyncOffset float64
}

// StopRecording is one measurement stop.
type StopRecording struct {
	// Time is the probe start within the session, seconds.
	Time float64
	// Left and Right are the earbud channels.
	Left, Right []float64
}

// PipelineOptions configures Personalize.
type PipelineOptions struct {
	// Fusion tunes sensor fusion; zero value uses defaults.
	Fusion FusionOptions
	// NearField tunes interpolation; ModelCorrection defaults on.
	NearField NearFieldOptions
	// Gesture tunes the auto-rejection; zero value uses defaults.
	Gesture GestureLimits
	// SkipGestureCheck disables §4.6 rejection (used by ablations).
	SkipGestureCheck bool
	// DisableRoomTruncation turns off echo truncation (ablation A4).
	DisableRoomTruncation bool
	// RingElevationDeg declares that the sweep was performed on an
	// elevation ring (the §7 3-D extension): measured path delays then
	// include an out-of-plane leg, which is removed before the planar
	// sensor fusion (the per-measurement slant is estimated from the
	// mean binaural delay).
	RingElevationDeg float64
	// Workers bounds the pipeline's internal parallelism: the per-stop
	// channel-estimation fan-out and (unless Fusion.Workers overrides it)
	// the sensor-fusion seeding grid. 0 means GOMAXPROCS; negative means
	// sequential. Stops are independent and results are re-assembled in
	// sweep order, so the output is bit-identical at every worker count.
	Workers int
	// Observer, when non-nil, receives per-stage durations/outcomes and
	// skipped-stop counts (obs.PipelineObserver satisfies it). Observation
	// is passive — it must never change solver numerics — and its methods
	// may be called concurrently when multiple solves share one observer.
	Observer Observer
}

// Observer receives pipeline telemetry. Implementations must be safe for
// concurrent use and cheap: StageDone runs on the solve path.
type Observer interface {
	// StageDone reports one pipeline stage's wall time and outcome (err is
	// nil on success, the context error on cancellation).
	StageDone(stage string, d time.Duration, err error)
	// SkippedStops reports measurement stops dropped by channel estimation
	// in one solve (not called when every stop was usable).
	SkippedStops(n int)
}

// Pipeline stage names as reported to Observer.StageDone, in execution
// order. StageChannelEstimation covers the per-stop fan-out and the
// fusion-observation indexing; StageNearField covers near-field indexing
// and interpolation (§4.2); StageFarField the §4.3 synthesis.
const (
	StageChannelEstimation = "channel_estimation"
	StageSensorFusion      = "sensor_fusion"
	StageGestureCheck      = "gesture_check"
	StageNearField         = "nearfield_interpolation"
	StageFarField          = "farfield_synthesis"
)

// Personalization is the pipeline's output: the §4.4 lookup table plus the
// intermediate products applications and evaluations need.
type Personalization struct {
	// Table holds the personalized near- and far-field HRIRs indexed by
	// angle.
	Table *hrtf.Table
	// HeadParams is E_opt from sensor fusion.
	HeadParams head.Params
	// Track is the fused phone trajectory (angles in degrees, [i]
	// matches Stops[i]).
	TrackDeg []float64
	// Radii are the per-stop phone distances, metres.
	Radii []float64
	// MeanResidualDeg is the fusion α/θ residual.
	MeanResidualDeg float64
	// Gesture is the quality report.
	Gesture GestureReport
	// SkippedStops counts measurement stops dropped because channel
	// estimation failed on them (e.g. no identifiable first tap). A
	// non-zero count means the sweep was degraded even though the solve
	// succeeded.
	SkippedStops int
	// StopError is the first per-stop estimation error, nil when no stop
	// was skipped.
	StopError error
}

// ErrInvalidSession is the sentinel wrapped by every SessionInput
// validation failure. Service boundaries feed Personalize untrusted JSON;
// errors.Is(err, ErrInvalidSession) distinguishes "bad request" from a
// pipeline failure on well-formed input.
var ErrInvalidSession = errors.New("core: invalid session input")

// Validate checks the structural invariants a session must satisfy before
// any DSP runs: a finite positive sample rate, a non-empty probe, at least
// one stop with matched non-empty stereo channels, and an IMU log. All
// failures wrap ErrInvalidSession.
func (in SessionInput) Validate() error {
	if in.SampleRate <= 0 || math.IsNaN(in.SampleRate) || math.IsInf(in.SampleRate, 0) {
		return fmt.Errorf("%w: sample rate %v (want a finite rate > 0)", ErrInvalidSession, in.SampleRate)
	}
	if len(in.Probe) == 0 {
		return fmt.Errorf("%w: empty probe signal", ErrInvalidSession)
	}
	if len(in.Stops) == 0 {
		return fmt.Errorf("%w: session has no measurement stops", ErrInvalidSession)
	}
	if len(in.IMU) == 0 {
		return fmt.Errorf("%w: session has no IMU samples", ErrInvalidSession)
	}
	for i, stop := range in.Stops {
		if len(stop.Left) == 0 || len(stop.Right) == 0 {
			return fmt.Errorf("%w: stop %d has an empty channel (left %d, right %d samples)",
				ErrInvalidSession, i, len(stop.Left), len(stop.Right))
		}
		if len(stop.Left) != len(stop.Right) {
			return fmt.Errorf("%w: stop %d has mismatched channels (left %d, right %d samples)",
				ErrInvalidSession, i, len(stop.Left), len(stop.Right))
		}
	}
	return nil
}

// Personalize runs the full UNIQ pipeline (Fig 6): channel estimation →
// diffraction-aware sensor fusion → near-field interpolation → near-far
// synthesis. It returns ErrBadGesture (wrapped) when the sweep fails the
// quality check.
func Personalize(in SessionInput, opt PipelineOptions) (*Personalization, error) {
	return PersonalizeContext(context.Background(), in, opt)
}

// PersonalizeContext is Personalize with cancellation: the context is
// checked between pipeline stages, per measurement stop, and inside the
// sensor-fusion search, so a server can bound the solve with a deadline.
// It returns the context's error when cancelled.
func PersonalizeContext(ctx context.Context, in SessionInput, opt PipelineOptions) (*Personalization, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	obsv := opt.Observer

	// 1. Channel estimation per stop, fanned across a bounded worker pool:
	// stops are independent, so they run concurrently and are re-assembled
	// in sweep order below (the output is bit-identical at any worker
	// count).
	est := &ChannelEstimator{
		Probe:              in.Probe,
		SampleRate:         in.SampleRate,
		SystemIR:           in.SystemIR,
		SyncOffset:         in.SyncOffset,
		TruncateRoomEchoes: !opt.DisableRoomTruncation,
	}
	// Fill the estimator's defaults once up front: Estimate then never
	// writes the estimator, making it safe to share across the workers.
	est.fillDefaults()
	workers := opt.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	if opt.Fusion.Workers == 0 {
		opt.Fusion.Workers = workers
	}
	if workers > len(in.Stops) {
		workers = len(in.Stops)
	}
	track := imu.Integrate(in.IMU, 0)
	type stopResult struct {
		ch  BinauralChannel
		err error
	}
	estStart := stageClock(obsv)
	results := make([]stopResult, len(in.Stops))
	if workers == 1 {
		for i, stop := range in.Stops {
			if err := ctx.Err(); err != nil {
				stageDone(obsv, StageChannelEstimation, estStart, err)
				return nil, err
			}
			results[i].ch, results[i].err = est.Estimate(stop.Left, stop.Right)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					i := int(next.Add(1)) - 1
					if i >= len(in.Stops) {
						return
					}
					stop := in.Stops[i]
					results[i].ch, results[i].err = est.Estimate(stop.Left, stop.Right)
				}
			}()
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			stageDone(obsv, StageChannelEstimation, estStart, err)
			return nil, err
		}
	}
	var channels []BinauralChannel
	var obs []FusionObservation
	skipped := 0
	var firstSkip error
	for i, stop := range in.Stops {
		if results[i].err != nil {
			// Skip unusable stops rather than failing the sweep, but keep
			// the evidence: operators watch SkippedStops for degraded
			// sessions.
			skipped++
			if firstSkip == nil {
				firstSkip = fmt.Errorf("core: stop %d: %w", i, results[i].err)
			}
			continue
		}
		ch := results[i].ch
		channels = append(channels, ch)
		obs = append(obs, FusionObservation{
			DelayLeft:  ch.DelayLeft,
			DelayRight: ch.DelayRight,
			AlphaRad:   geom.NormalizeAngle(imu.AngleAt(in.IMU, track, stop.Time)),
		})
	}
	if obsv != nil && skipped > 0 {
		obsv.SkippedStops(skipped)
	}
	if len(obs) < 5 {
		err := fmt.Errorf("core: only %d usable stops: %w", len(obs), ErrTooFewObservations)
		stageDone(obsv, StageChannelEstimation, estStart, err)
		return nil, err
	}
	stageDone(obsv, StageChannelEstimation, estStart, nil)
	if opt.RingElevationDeg != 0 {
		correctRingSlant(obs, opt.RingElevationDeg)
		// The ring's effective head cross-section is the ellipsoid slice
		// the creeping wave rides, which shrinks with elevation; scale
		// the fusion search region and prior to match.
		s := ringCrossSectionScale(opt.RingElevationDeg)
		opt.Fusion.fillDefaults()
		opt.Fusion.ParamLo = scaleParams(opt.Fusion.ParamLo, s)
		opt.Fusion.ParamHi = scaleParams(opt.Fusion.ParamHi, s)
		opt.Fusion.PriorMean = scaleParams(head.DefaultParams(), s)
		// Model mismatch grows with elevation; keep the gesture check
		// meaningful by relaxing its residual limit proportionally.
		opt.Gesture.fillDefaults()
		opt.Gesture.MaxResidualDeg /= s
	}

	// 2. Diffraction-aware sensor fusion.
	fusionStart := stageClock(obsv)
	fusion, err := FuseSensorsContext(ctx, obs, opt.Fusion)
	stageDone(obsv, StageSensorFusion, fusionStart, err)
	if err != nil {
		return nil, err
	}

	// 3. Gesture auto-correction.
	gestureStart := stageClock(obsv)
	gesture := CheckGesture(fusion, opt.Gesture)
	if !gesture.OK && !opt.SkipGestureCheck {
		err := fmt.Errorf("%w: %s", ErrBadGesture, gesture.Reason)
		stageDone(obsv, StageGestureCheck, gestureStart, err)
		return nil, err
	}
	stageDone(obsv, StageGestureCheck, gestureStart, nil)

	// 4. Near-field interpolation.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nfOpt := opt.NearField
	nfOpt.ModelCorrection = true
	nearStart := stageClock(obsv)
	near, err := InterpolateNearField(channels, fusion.AnglesRad, fusion.Radii, fusion.Params, nfOpt)
	stageDone(obsv, StageNearField, nearStart, err)
	if err != nil {
		return nil, err
	}

	// 5. Near-far conversion.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	meanRadius := 0.0
	for _, r := range fusion.Radii {
		meanRadius += r / float64(len(fusion.Radii))
	}
	farStart := stageClock(obsv)
	table, err := SynthesizeFarField(near, fusion.Params, NearFarOptions{Radius: meanRadius})
	stageDone(obsv, StageFarField, farStart, err)
	if err != nil {
		return nil, err
	}

	out := &Personalization{
		Table:           table,
		HeadParams:      fusion.Params,
		Radii:           fusion.Radii,
		MeanResidualDeg: geom.Degrees(fusion.MeanAngleResidualRad),
		Gesture:         gesture,
		SkippedStops:    skipped,
		StopError:       firstSkip,
	}
	for _, a := range fusion.AnglesRad {
		out.TrackDeg = append(out.TrackDeg, geom.Degrees(a))
	}
	return out, nil
}

// correctRingSlant removes the out-of-plane leg from elevated-ring delays:
// with the phone on a ring at elevation ε and slant distance d₃ from the
// head, the vertical leg is ≈ d₃·sin ε and the planar model should see
// d₂ = √(d₃² − z²). The per-measurement slant distance is approximated by
// the mean of the two ears' path lengths.
func correctRingSlant(obs []FusionObservation, elevDeg float64) {
	s := math.Sin(geom.Radians(elevDeg))
	const v = head.SpeedOfSound
	for i := range obs {
		dl := obs[i].DelayLeft * v
		dr := obs[i].DelayRight * v
		z := (dl + dr) / 2 * s
		obs[i].DelayLeft = planarize(dl, z) / v
		obs[i].DelayRight = planarize(dr, z) / v
	}
}

func planarize(d3, z float64) float64 {
	d2sq := d3*d3 - z*z
	if d2sq < 0.0025 { // 5 cm floor
		d2sq = 0.0025
	}
	return math.Sqrt(d2sq)
}

// ringVerticalSemiAxis is the assumed head semi-height for the §7 ring
// geometry (anthropometric constant, shared with the simulator's ellipsoid
// by construction of the model, not by peeking at it).
const ringVerticalSemiAxis = 0.115

// ringCrossSectionScale returns the ellipsoid-slice scale factor for a ring
// at the given elevation, evaluated at half a nominal arm radius of height.
func ringCrossSectionScale(elevDeg float64) float64 {
	z := 0.32 * math.Sin(geom.Radians(elevDeg)) / 2
	r := z / ringVerticalSemiAxis
	if r > 0.85 {
		r = 0.85
	}
	if r < -0.85 {
		r = -0.85
	}
	return math.Sqrt(1 - r*r)
}

func scaleParams(p head.Params, s float64) head.Params {
	return head.Params{A: p.A * s, B: p.B * s, C: p.C * s}
}

// stageClock returns the stage start time, or zero when no observer is
// attached so the unobserved solve path never reads the clock.
func stageClock(o Observer) time.Time {
	if o == nil {
		return time.Time{}
	}
	return time.Now()
}

// stageDone reports a finished stage to the observer, if any.
func stageDone(o Observer, stage string, start time.Time, err error) {
	if o == nil {
		return
	}
	o.StageDone(stage, time.Since(start), err)
}
