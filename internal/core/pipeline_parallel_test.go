package core

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

// coarseOptions keeps the parallelism tests fast: the solve still runs every
// pipeline stage, just on a coarse fusion grid.
func coarseOptions(workers int) PipelineOptions {
	return PipelineOptions{
		Workers: workers,
		Fusion: FusionOptions{
			// Exact pins the frozen pre-cascade solve: the golden SHA-256
			// test and the worker-determinism/observer tests all hash or
			// compare output built on these options, and the fast cascade
			// is deliberately not bit-compatible with it.
			Exact:      true,
			GridPoints: 2,
			MaxEvals:   40,
			Loc:        LocalizerOptions{AngleStepDeg: 3, RadiusSteps: 8, BoundaryVertices: 120},
		},
		Gesture: GestureLimits{MaxResidualDeg: 15},
	}
}

// TestPersonalizeWorkerDeterminism asserts the pipeline's contract that the
// worker count is invisible in the output: the table, head parameters, and
// track must be bit-identical whether the stop fan-out and fusion grid run
// sequentially or across many goroutines.
func TestPersonalizeWorkerDeterminism(t *testing.T) {
	v := sim.NewVolunteer(4, 4321)
	s, err := sim.RunSession(v, sim.SessionConfig{NumStops: 12})
	if err != nil {
		t.Fatal(err)
	}
	in := sessionInput(s)

	type snapshot struct {
		table []byte
		p     *Personalization
	}
	run := func(workers int) snapshot {
		p, err := Personalize(in, coarseOptions(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		tb, err := json.Marshal(p.Table)
		if err != nil {
			t.Fatalf("workers=%d: marshal table: %v", workers, err)
		}
		return snapshot{table: tb, p: p}
	}

	base := run(-1) // sequential
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		got := run(workers)
		if string(got.table) != string(base.table) {
			t.Errorf("workers=%d: table differs from sequential run", workers)
		}
		if got.p.HeadParams != base.p.HeadParams {
			t.Errorf("workers=%d: head params %+v != %+v", workers, got.p.HeadParams, base.p.HeadParams)
		}
		for i := range base.p.TrackDeg {
			if got.p.TrackDeg[i] != base.p.TrackDeg[i] {
				t.Errorf("workers=%d: track[%d] %v != %v", workers, i, got.p.TrackDeg[i], base.p.TrackDeg[i])
				break
			}
		}
		for i := range base.p.Radii {
			if got.p.Radii[i] != base.p.Radii[i] {
				t.Errorf("workers=%d: radius[%d] differs", workers, i)
				break
			}
		}
	}
}

// TestPersonalizeSkippedStops checks that unusable stops are counted and
// the first error kept, rather than silently dropped — and that the counts
// agree between sequential and parallel runs.
func TestPersonalizeSkippedStops(t *testing.T) {
	v := sim.NewVolunteer(5, 555)
	s, err := sim.RunSession(v, sim.SessionConfig{NumStops: 12})
	if err != nil {
		t.Fatal(err)
	}
	in := sessionInput(s)
	// Silence two stops: channel estimation finds no first tap in them.
	for _, i := range []int{2, 7} {
		in.Stops[i].Left = make([]float64, len(in.Stops[i].Left))
		in.Stops[i].Right = make([]float64, len(in.Stops[i].Right))
	}
	for _, workers := range []int{1, 4} {
		p, err := Personalize(in, coarseOptions(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if p.SkippedStops != 2 {
			t.Errorf("workers=%d: SkippedStops = %d, want 2", workers, p.SkippedStops)
		}
		if p.StopError == nil {
			t.Fatalf("workers=%d: StopError should carry the first failure", workers)
		}
		if !errors.Is(p.StopError, ErrNoFirstTap) {
			t.Errorf("workers=%d: StopError = %v, want wrapped ErrNoFirstTap", workers, p.StopError)
		}
		if !strings.Contains(p.StopError.Error(), "stop 2") {
			t.Errorf("workers=%d: StopError %q should name the first bad stop", workers, p.StopError)
		}
	}
	// A clean sweep reports zero.
	clean, err := Personalize(sessionInput(s), coarseOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if clean.SkippedStops != 0 || clean.StopError != nil {
		t.Errorf("clean sweep reported %d skipped (%v)", clean.SkippedStops, clean.StopError)
	}
}

// TestPersonalizeCancelMidFanOut cancels while the parallel stop fan-out is
// in flight: the pipeline must return the context's error promptly and
// leave no worker goroutines behind.
func TestPersonalizeCancelMidFanOut(t *testing.T) {
	v := sim.NewVolunteer(6, 66)
	s, err := sim.RunSession(v, sim.SessionConfig{NumStops: 19})
	if err != nil {
		t.Fatal(err)
	}
	in := sessionInput(s)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Land inside channel estimation: a 19-stop fan-out takes well over
		// a millisecond per stop.
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = PersonalizeContext(ctx, in, coarseOptions(4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// "Promptly": in-flight per-stop estimates finish but no new ones
	// start; the whole return is far below a full solve.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
	// No leaked workers once the call returns.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+1 {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}
