package core

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/linalg"
)

// This file implements the paper's two "additional attempts" at principled
// near-to-far conversion (§4.3). Both are *negative results* in the paper
// and here: they are not part of the pipeline, but the code and tests
// document exactly why they fail, which is half their value.
//
// Attempt 1 (speaker beamforming): use the phone's two speakers to emit
// time-varying beam patterns w_t(θ) and solve the linear system
//
//	H_near(X_k) = Σ_i w_t(θ_i)·H(X_k, θ_i)   for every pattern t (eq. 6)
//
// for the per-direction components H(X_k, θ_i). The paper: "the 2 speakers
// are unable to create a spatially narrow beam pattern... the system of
// equations being ill-ranked".
//
// Attempt 2 (blind decoupling): model each near-field measurement as
// (Σ_i A_i δ(τ_i)) ∗ h_k (eq. 8) with known geometric delays τ_i but
// unknown ray gains A_i and pinna filter h_k, and recover both by
// alternating least squares. The paper: identifiability fails — many
// (A, h) pairs explain the data.

// BeamformingDesign models the phone's speaker array for attempt 1.
type BeamformingDesign struct {
	// NumSpeakers is the array size. Phones have 2; larger values serve
	// as the "what if we could beamform" control.
	NumSpeakers int
	// SpeakerSpacing is the element spacing, metres (phones: 7–15 cm
	// between earpiece and bottom speaker).
	SpeakerSpacing float64
	// Frequency is the beam's carrier frequency, Hz.
	Frequency float64
	// NumPatterns is how many distinct steering phases to emit.
	NumPatterns int
	// NumDirections is how many ray directions to solve for.
	NumDirections int
}

// DefaultBeamformingDesign mirrors a phone: 2 speakers 12 cm apart, 2 kHz.
func DefaultBeamformingDesign() BeamformingDesign {
	return BeamformingDesign{
		NumSpeakers:    2,
		SpeakerSpacing: 0.12,
		Frequency:      2000,
		NumPatterns:    24,
		NumDirections:  12,
	}
}

// PatternMatrix builds the w_t(θ_i) matrix of eq. 6: each row is one
// steered array pattern sampled at the solve directions.
func (d BeamformingDesign) PatternMatrix() *linalg.Matrix {
	n := d.NumSpeakers
	if n < 2 {
		n = 2
	}
	m := linalg.NewMatrix(d.NumPatterns, d.NumDirections)
	wavelength := 343.0 / d.Frequency
	for t := 0; t < d.NumPatterns; t++ {
		// Sweep the per-element steering phase over the patterns.
		phase := 2 * math.Pi * float64(t) / float64(d.NumPatterns)
		for i := 0; i < d.NumDirections; i++ {
			// Interior sampling: the endpoints 0 and π alias onto each
			// other for half-wavelength arrays.
			theta := math.Pi * (float64(i) + 0.5) / float64(d.NumDirections)
			// Uniform-line-array factor |Σ_k e^{jk(phase + k0·d·cosθ)}|.
			arg := phase + 2*math.Pi/wavelength*d.SpeakerSpacing*math.Cos(theta)
			var re, im float64
			for k := 0; k < n; k++ {
				re += math.Cos(float64(k) * arg)
				im += math.Sin(float64(k) * arg)
			}
			m.Set(t, i, math.Hypot(re, im)/float64(n))
		}
	}
	return m
}

// BeamformingConditioning reports the condition number of the attempt-1
// system and the per-direction recovery error on a synthetic ground truth.
// Large outputs reproduce the paper's conclusion.
type BeamformingConditioning struct {
	// Cond is the 2-norm condition estimate of the pattern matrix.
	Cond float64
	// RelativeError is ‖recovered − truth‖ / ‖truth‖ for a noiseless
	// synthetic solve with 0.1% measurement noise.
	RelativeError float64
}

// EvaluateBeamforming builds the eq. 6 system, solves it for a synthetic
// per-direction component vector under slight measurement noise, and
// reports how badly conditioning amplifies that noise.
func EvaluateBeamforming(d BeamformingDesign, rng *rand.Rand) (BeamformingConditioning, error) {
	if d.NumPatterns < d.NumDirections {
		return BeamformingConditioning{}, errors.New("core: need at least as many patterns as directions")
	}
	m := d.PatternMatrix()
	truth := make([]float64, d.NumDirections)
	for i := range truth {
		truth[i] = 0.3 + rng.Float64()
	}
	b := m.MulVec(truth)
	for i := range b {
		b[i] *= 1 + 0.001*rng.NormFloat64() // 0.1% measurement noise
	}
	recovered, err := linalg.LeastSquares(m, b, 0)
	if err != nil {
		// Singular normal equations: the clearest form of "ill-ranked".
		return BeamformingConditioning{Cond: math.Inf(1), RelativeError: math.Inf(1)}, nil
	}
	var num, den float64
	for i := range truth {
		dfi := recovered[i] - truth[i]
		num += dfi * dfi
		den += truth[i] * truth[i]
	}
	return BeamformingConditioning{
		Cond:          linalg.CondEstimate(m, 0, rng),
		RelativeError: math.Sqrt(num / den),
	}, nil
}

// BlindDecouplingResult reports an attempt-2 run.
type BlindDecouplingResult struct {
	// FitResidual is the final relative data-fit error — typically small
	// (the model explains the measurement).
	FitResidual float64
	// PinnaCorrelation is the normalized correlation between the
	// recovered h_k and the true pinna filter — typically poor and
	// init-dependent (the decomposition is not identifiable).
	PinnaCorrelation float64
}

// BlindDecouple runs alternating least squares on eq. 8: given a measured
// channel (length n), the known ray delays tau (in samples), and an
// assumed pinna-filter length, it alternates between solving for the ray
// gains A (given h) and the pinna filter h (given A), from a seeded random
// initialization.
func BlindDecouple(measured []float64, tauSamples []int, pinnaLen, iters int, truePinna []float64, rng *rand.Rand) (BlindDecouplingResult, error) {
	n := len(measured)
	if n == 0 || len(tauSamples) == 0 || pinnaLen <= 0 {
		return BlindDecouplingResult{}, errors.New("core: blind decoupling needs data, delays and a filter length")
	}
	if iters <= 0 {
		iters = 30
	}
	// Unknowns: gains A (one per ray) and pinna h (pinnaLen taps).
	gains := make([]float64, len(tauSamples))
	for i := range gains {
		gains[i] = 0.5 + rng.Float64()
	}
	h := make([]float64, pinnaLen)
	for i := range h {
		h[i] = rng.NormFloat64() * 0.1
	}
	h[0] = 1

	for it := 0; it < iters; it++ {
		// Solve for h given gains: measured ≈ C_h · h where column j of
		// C_h places Σ_i gains_i at tau_i + j.
		ch := linalg.NewMatrix(n, pinnaLen)
		for j := 0; j < pinnaLen; j++ {
			for i, tau := range tauSamples {
				row := tau + j
				if row >= 0 && row < n {
					ch.Set(row, j, ch.At(row, j)+gains[i])
				}
			}
		}
		if sol, err := linalg.LeastSquares(ch, measured, 1e-9); err == nil {
			h = sol
		}
		// Solve for gains given h: measured ≈ C_g · gains where column i
		// is h delayed by tau_i.
		cg := linalg.NewMatrix(n, len(tauSamples))
		for i, tau := range tauSamples {
			for j := 0; j < pinnaLen; j++ {
				row := tau + j
				if row >= 0 && row < n {
					cg.Set(row, i, h[j])
				}
			}
		}
		if sol, err := linalg.LeastSquares(cg, measured, 1e-9); err == nil {
			gains = sol
		}
	}

	// Final data fit.
	recon := make([]float64, n)
	for i, tau := range tauSamples {
		for j := 0; j < pinnaLen; j++ {
			row := tau + j
			if row >= 0 && row < n {
				recon[row] += gains[i] * h[j]
			}
		}
	}
	var num, den float64
	for i := range measured {
		d := recon[i] - measured[i]
		num += d * d
		den += measured[i] * measured[i]
	}
	res := BlindDecouplingResult{FitResidual: math.Sqrt(num / math.Max(den, 1e-30))}
	if len(truePinna) > 0 {
		res.PinnaCorrelation = normCorr(h, truePinna)
	}
	return res, nil
}

// normCorr is the peak normalized cross-correlation of two vectors.
func normCorr(a, b []float64) float64 {
	var ea, eb float64
	for _, v := range a {
		ea += v * v
	}
	for _, v := range b {
		eb += v * v
	}
	if ea == 0 || eb == 0 {
		return 0
	}
	best := 0.0
	for lag := -len(b) + 1; lag < len(a); lag++ {
		s := 0.0
		for t := range b {
			j := t + lag
			if j >= 0 && j < len(a) {
				s += b[t] * a[j]
			}
		}
		if s > best {
			best = s
		}
	}
	return best / math.Sqrt(ea*eb)
}
