package geom

import "errors"

var errSweepOut = errors.New("geom: sweep output buffer too small")

// sweepTangents tracks the tangent-vertex pair incrementally as the query
// point moves CCW around the boundary: both tangent lines rotate with the
// query, so both tangent vertices advance monotonically CCW. A full polar
// ring of queries therefore costs O(ring + n) tangent work instead of
// O(ring * n) (scan) or O(ring * log n) (per-query binary search).
//
// The two tangents are distinguished by which sign change of
// h(i) = cross(v_i - p, v_{i+1} - p) they sit on: the "enter" tangent has
// h(i-1) < 0 < h(i) (the visible chain begins), the "exit" tangent the
// opposite. Both are the exact strict primitives of the reference scan
// (s1*s2 > 0 with s1 = -h(i-1), s2 = h(i)), so a successful advance lands
// on precisely the vertices the scan would report.
type sweepTangents struct {
	enter, exit int
}

// advanceTangent walks idx CCW (at most one full loop) until the strict
// tangent condition of the requested kind holds at the new query point. ok
// is false when no vertex satisfies it strictly — an exactly-degenerate
// configuration the caller must route to the scan. The walk evaluates the
// same cross-product primitive h(i) = cross(v_i - p, v_{i+1} - p) the
// reference scan uses (one new vertex difference and one Cross per step).
func (b *Boundary) advanceTangent(idx int, p Vec, enter bool) (int, bool) {
	verts := b.verts
	n := len(verts)
	prev := idx - 1
	if prev < 0 {
		prev = n - 1
	}
	cur := verts[idx].Sub(p)
	hPrev := verts[prev].Sub(p).Cross(cur)
	for steps := 0; steps < n; steps++ {
		next := idx + 1
		if next == n {
			next = 0
		}
		nxt := verts[next].Sub(p)
		hCur := cur.Cross(nxt)
		if enter {
			if hPrev < 0 && hCur > 0 {
				return idx, true
			}
		} else {
			if hPrev > 0 && hCur < 0 {
				return idx, true
			}
		}
		idx = next
		cur = nxt
		hPrev = hCur
	}
	return idx, false
}

// path resolves one query point against the tracked tangent pair,
// advancing the sweep state first. Shared by SweepRing and
// SweepRingPoints.
func (b *Boundary) sweepPath(st *sweepTangents, p Vec, earIdx int) (Path, error) {
	if b.inside(p) {
		return Path{}, ErrInsideBoundary
	}
	d := p.Sub(b.verts[earIdx])
	if !b.directionEntersInterior(earIdx, d) {
		return Path{Length: p.Dist(b.verts[earIdx]), Direct: true}, nil
	}
	var okE, okX bool
	st.enter, okE = b.advanceTangent(st.enter, p, true)
	st.exit, okX = b.advanceTangent(st.exit, p, false)
	if !okE || !okX {
		// Exactly-degenerate point (some cross product is zero): defer to
		// the reference scan for this point; the next point re-syncs the
		// incremental state by wrapping at most once.
		return b.shortestExteriorPathScan(p, earIdx), nil
	}
	t1, t2 := st.enter, st.exit
	if t2 < t1 {
		t1, t2 = t2, t1
	}
	return b.diffractedPath(p, earIdx, t1, t2), nil
}

// SweepRing computes ShortestExteriorPath for every point
// FromPolar(thetas[j], r) against boundary vertex earIdx, writing the
// result into out[j]. Results are identical to per-point
// ShortestExteriorPath calls — same floats, same tie-breaks — but the
// tangent pair is advanced incrementally as theta sweeps, so the whole
// ring costs O(len(thetas) + n) tangent work. thetas should be CCW
// non-decreasing for the amortization to hold; correctness does not depend
// on it. len(out) must be at least len(thetas).
func (b *Boundary) SweepRing(thetas []float64, r float64, earIdx int, out []Path) error {
	if len(out) < len(thetas) {
		return errSweepOut
	}
	var st sweepTangents
	for j, theta := range thetas {
		p, err := b.sweepPath(&st, FromPolar(theta, r), earIdx)
		if err != nil {
			return err
		}
		out[j] = p
	}
	return nil
}

// SweepRingPoints is SweepRing over caller-precomputed query points:
// out[j] receives the exterior shortest path from pts[j] to vertex earIdx.
// Use it when the same angular ring is queried at several radii — the
// trigonometry to place the points is then paid once instead of per
// query. Points should advance CCW for the amortization to hold.
func (b *Boundary) SweepRingPoints(pts []Vec, earIdx int, out []Path) error {
	if len(out) < len(pts) {
		return errSweepOut
	}
	var st sweepTangents
	for j, pt := range pts {
		p, err := b.sweepPath(&st, pt, earIdx)
		if err != nil {
			return err
		}
		out[j] = p
	}
	return nil
}

// SweepGrid computes ShortestExteriorPath over the full polar grid
// thetas x radii against vertex earIdx: out[j*len(radii)+k] receives the
// path for FromPolar(thetas[j], radii[k]). len(out) must be at least
// len(thetas)*len(radii). Each radius ring is swept independently in
// O(len(thetas) + n); ring is scratch of at least len(thetas) paths (nil
// allocates).
func (b *Boundary) SweepGrid(thetas, radii []float64, earIdx int, out, ring []Path) error {
	if len(out) < len(thetas)*len(radii) {
		return errSweepOut
	}
	if len(ring) < len(thetas) {
		ring = make([]Path, len(thetas))
	}
	for k, r := range radii {
		if err := b.SweepRing(thetas, r, earIdx, ring); err != nil {
			return err
		}
		for j := range thetas {
			out[j*len(radii)+k] = ring[j]
		}
	}
	return nil
}
