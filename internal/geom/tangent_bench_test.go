package geom

import (
	"math"
	"testing"
)

func benchBoundary(b *testing.B) *Boundary {
	b.Helper()
	verts := make([]Vec, 240)
	for i := range verts {
		theta := 2 * math.Pi * float64(i) / float64(len(verts))
		verts[i] = Vec{X: 0.09 * math.Cos(theta), Y: 0.07 * math.Sin(theta)}
	}
	bnd, err := NewBoundary(verts)
	if err != nil {
		b.Fatal(err)
	}
	return bnd
}

// BenchmarkTangentIndices times the O(log n) tangent search alone.
func BenchmarkTangentIndices(b *testing.B) {
	bnd := benchBoundary(b)
	p := Vec{X: 0.31, Y: 0.22}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := bnd.tangentIndices(p); !ok {
			b.Fatal("degenerate")
		}
	}
}

// BenchmarkTangentScan is the O(n) reference the binary search replaces.
func BenchmarkTangentScan(b *testing.B) {
	bnd := benchBoundary(b)
	p := Vec{X: 0.31, Y: 0.22}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ts := bnd.tangentVerticesScan(p); len(ts) == 0 {
			b.Fatal("no tangents")
		}
	}
}

// BenchmarkShortestExteriorPath times one full shadowed path query on the
// default 240-vertex boundary.
func BenchmarkShortestExteriorPath(b *testing.B) {
	bnd := benchBoundary(b)
	p := Vec{X: -0.31, Y: 0.22}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bnd.ShortestExteriorPath(p, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepRing times a full 240-angle ring through the incremental
// sweep — the Localizer build's unit of work.
func BenchmarkSweepRing(b *testing.B) {
	bnd := benchBoundary(b)
	thetas := make([]float64, 240)
	for j := range thetas {
		thetas[j] = 2 * math.Pi * float64(j) / float64(len(thetas))
	}
	out := make([]Path, len(thetas))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bnd.SweepRing(thetas, 0.35, 5, out); err != nil {
			b.Fatal(err)
		}
	}
}
