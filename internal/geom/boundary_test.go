package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// circleBoundary builds an n-vertex regular polygon approximating a circle
// of radius r.
func circleBoundary(t *testing.T, r float64, n int) *Boundary {
	t.Helper()
	verts := make([]Vec, n)
	for i := 0; i < n; i++ {
		theta := 2 * math.Pi * float64(i) / float64(n)
		verts[i] = FromPolar(theta, r)
	}
	b, err := NewBoundary(verts)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBoundaryErrors(t *testing.T) {
	if _, err := NewBoundary([]Vec{{0, 0}, {1, 1}}); err == nil {
		t.Error("two vertices should fail")
	}
}

func TestContains(t *testing.T) {
	b := circleBoundary(t, 1, 256)
	if !b.Contains(Vec{0, 0}) {
		t.Error("center should be inside")
	}
	if !b.Contains(Vec{0.5, 0.5}) {
		t.Error("interior point should be inside")
	}
	if b.Contains(Vec{1.5, 0}) {
		t.Error("exterior point should be outside")
	}
	if b.Contains(Vec{0, -2}) {
		t.Error("exterior point should be outside")
	}
}

func TestPerimeterOfCircle(t *testing.T) {
	b := circleBoundary(t, 1, 2048)
	if math.Abs(b.Perimeter()-2*math.Pi) > 1e-3 {
		t.Errorf("perimeter %g, want ~2pi", b.Perimeter())
	}
}

func TestDirectPathWhenVisible(t *testing.T) {
	b := circleBoundary(t, 1, 1024)
	// Ear vertex at theta=pi/2 is (-1, 0) (index 256 of 1024).
	ear := 256
	p := Vec{-2, 0} // straight out from the ear
	path, err := b.ShortestExteriorPath(p, ear)
	if err != nil {
		t.Fatal(err)
	}
	if !path.Direct {
		t.Fatal("path should be direct")
	}
	if math.Abs(path.Length-1) > 1e-9 {
		t.Errorf("direct length %g, want 1", path.Length)
	}
}

func TestDiffractedPathAroundCircle(t *testing.T) {
	// Source on the +X side, target vertex at (-1, 0): the geodesic
	// around a unit circle from (d, 0) to (-1, 0) is the tangent length
	// sqrt(d^2-1) plus the arc from the tangent point to the target.
	b := circleBoundary(t, 1, 4096)
	ear := b.NearestVertex(Vec{-1, 0})
	d := 3.0
	p := Vec{d, 0}
	path, err := b.ShortestExteriorPath(p, ear)
	if err != nil {
		t.Fatal(err)
	}
	if path.Direct {
		t.Fatal("path should be diffracted")
	}
	tangentLen := math.Sqrt(d*d - 1)
	// Tangent point angle from +X axis: acos(1/d); arc from there to pi.
	arcLen := math.Pi - math.Acos(1/d)
	want := tangentLen + arcLen
	if math.Abs(path.Length-want) > 2e-3 {
		t.Errorf("geodesic length %g, want %g", path.Length, want)
	}
	if math.Abs(path.ArcLength-arcLen) > 2e-3 {
		t.Errorf("arc length %g, want %g", path.ArcLength, arcLen)
	}
}

func TestPathInsideErrors(t *testing.T) {
	b := circleBoundary(t, 1, 256)
	if _, err := b.ShortestExteriorPath(Vec{0, 0}, 0); err != ErrInsideBoundary {
		t.Errorf("expected ErrInsideBoundary, got %v", err)
	}
}

func TestPathAtLeastEuclidean(t *testing.T) {
	// The exterior geodesic can never be shorter than the straight line.
	b := circleBoundary(t, 0.8, 512)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		theta := rng.Float64() * 2 * math.Pi
		r := 1.0 + 3*rng.Float64()
		p := FromPolar(theta, r)
		ear := rng.Intn(b.NumVertices())
		path, err := b.ShortestExteriorPath(p, ear)
		if err != nil {
			return false
		}
		return path.Length >= p.Dist(b.Vertex(ear))-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPathContinuity(t *testing.T) {
	// Sliding the source smoothly should change the path length smoothly,
	// including across the lit/shadow transition.
	b := circleBoundary(t, 1, 4096)
	ear := b.NearestVertex(Vec{-1, 0})
	prev := -1.0
	for deg := 0.0; deg <= 360; deg += 0.5 {
		p := FromPolar(deg*math.Pi/180, 2)
		path, err := b.ShortestExteriorPath(p, ear)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 {
			if math.Abs(path.Length-prev) > 0.03 {
				t.Fatalf("path length jumped from %g to %g at %g deg", prev, path.Length, deg)
			}
		}
		prev = path.Length
	}
}

func TestFarFieldLitVsShadow(t *testing.T) {
	b := circleBoundary(t, 1, 4096)
	left := b.NearestVertex(Vec{-1, 0})
	right := b.NearestVertex(Vec{1, 0})
	// Wave from the left (theta=pi/2 direction): left vertex lit, right
	// shadowed.
	extraL, arcL := b.FarFieldPath(math.Pi/2, left)
	extraR, arcR := b.FarFieldPath(math.Pi/2, right)
	if arcL != 0 {
		t.Errorf("lit vertex has arc %g", arcL)
	}
	if math.Abs(extraL+1) > 1e-6 {
		t.Errorf("lit vertex extra %g, want -1 (one radius early)", extraL)
	}
	if arcR <= 0 {
		t.Fatal("shadowed vertex should creep")
	}
	// Creeping geodesic for plane wave onto a circle: tangent point at
	// (0, ±1), extra = 0 (tangent point on the wavefront plane) + arc
	// pi/2.
	if math.Abs(extraR-math.Pi/2) > 1e-2 {
		t.Errorf("shadow extra %g, want ~pi/2", extraR)
	}
	if extraR <= extraL {
		t.Error("shadowed ear must receive later than lit ear")
	}
}

func TestFarFieldContinuityOverAngle(t *testing.T) {
	b := circleBoundary(t, 1, 4096)
	ear := b.NearestVertex(Vec{1, 0})
	prev := math.Inf(1)
	for deg := 0.0; deg <= 360; deg += 0.5 {
		extra, _ := b.FarFieldPath(deg*math.Pi/180, ear)
		if !math.IsInf(prev, 1) && math.Abs(extra-prev) > 0.03 {
			t.Fatalf("far-field extra jumped from %g to %g at %g deg", prev, extra, deg)
		}
		prev = extra
	}
}

func TestArcBetween(t *testing.T) {
	b := circleBoundary(t, 1, 4096)
	i := b.NearestVertex(Vec{0, 1})
	j := b.NearestVertex(Vec{-1, 0})
	// CCW from front (0,1) to left (-1,0) is a quarter turn.
	if got := b.ArcBetween(i, j); math.Abs(got-math.Pi/2) > 1e-2 {
		t.Errorf("CCW arc %g, want pi/2", got)
	}
	if got := b.ArcBetween(j, i); math.Abs(got-3*math.Pi/2) > 1e-2 {
		t.Errorf("CCW arc %g, want 3pi/2", got)
	}
}

func TestNearestVertex(t *testing.T) {
	b := circleBoundary(t, 1, 8)
	idx := b.NearestVertex(Vec{0, 1.1})
	if b.Vertex(idx).Dist(Vec{0, 1}) > 1e-9 {
		t.Errorf("nearest vertex %v", b.Vertex(idx))
	}
}
