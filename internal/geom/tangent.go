// O(log n) tangent and silhouette queries on the convex boundary, plus the
// angular-sweep batch API that amortizes tangent motion across a polar grid.
//
// Both binary searches exploit the same structure: walking the CCW vertex
// loop, the signed "turn as seen from the query" sequence has exactly one
// positive and one negative run, and the two run boundaries are the tangent
// (resp. silhouette) vertices. Each search locates the two sign changes
// with a disambiguating side predicate, then verifies the result with the
// exact local condition the O(n) reference scan uses; any degeneracy
// (exactly collinear query, exactly parallel edge) fails verification and
// routes to the scan, so results are always identical to the reference.
package geom

// tangentIndices returns the two tangent vertex indices of the boundary as
// seen from exterior point p, in ascending order, in O(log n). ok is false
// when the configuration is degenerate (some cross product is exactly
// zero); callers then fall back to the O(n) scan.
func (b *Boundary) tangentIndices(p Vec) (t1, t2 int, ok bool) {
	n := len(b.verts)
	if n < 8 {
		return 0, 0, false
	}
	// h(i) = cross(v_i - p, v_{i+1} - p): positive where the loop appears
	// CCW from p (the far chain), negative where it appears CW (the near,
	// visible chain).
	h := func(i int) float64 {
		v := b.verts[i%n]
		w := b.verts[(i+1)%n]
		return v.Sub(p).Cross(w.Sub(p))
	}
	h0 := h(0)
	if h0 == 0 {
		return 0, 0, false
	}
	// side(j) > 0 when vertex j appears strictly CCW of vertex 0 from p.
	// Within vertex 0's own run the apparent angle is strictly monotone,
	// so side disambiguates "same run as 0" from the wrapped tail run.
	v0 := b.verts[0].Sub(p)
	side := func(j int) float64 { return v0.Cross(b.verts[j].Sub(p)) }

	// First sign change a: the smallest j whose h-sign differs from h(0),
	// i.e. the first vertex of the opposite run. pred(j) is true exactly
	// while j remains in vertex 0's run, which is a prefix of [1, n-1].
	var pred func(int) bool
	if h0 > 0 {
		pred = func(j int) bool { return h(j) > 0 && side(j) > 0 }
	} else {
		pred = func(j int) bool { return h(j) < 0 && side(j) < 0 }
	}
	lo, hi := 0, n-1 // pred(0) true by definition, pred(n-1) false (tail run or opposite run)
	if pred(n - 1) {
		return 0, 0, false
	}
	for lo+1 < hi {
		if mid := (lo + hi) / 2; pred(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	a := hi

	// Second sign change c: the first j in (a, n] where the sign returns
	// to h(0)'s. h(n) == h(0) guarantees existence.
	lo, hi = a, n
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if hm := h(mid); (h0 > 0) == (hm > 0) && hm != 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	c := hi % n

	if !b.isTangentStrict(a, p) || !b.isTangentStrict(c, p) || a == c {
		return 0, 0, false
	}
	if a < c {
		return a, c, true
	}
	return c, a, true
}

// isTangentStrict verifies the reference scan's tangent condition at vertex
// i with strict inequality: both neighbours strictly on the same side of
// the line p -> v_i. Exact zeros are deliberately rejected so degenerate
// configurations take the scan path.
func (b *Boundary) isTangentStrict(i int, p Vec) bool {
	n := len(b.verts)
	v := b.verts[i]
	d := v.Sub(p)
	s1 := d.Cross(b.verts[(i-1+n)%n].Sub(p))
	s2 := d.Cross(b.verts[(i+1)%n].Sub(p))
	return s1*s2 > 0
}

// silhouetteIndices returns the two silhouette vertex indices for a plane
// wave travelling along -u (the vertices whose supporting line is parallel
// to u), in ascending order, in O(log n). ok is false on degenerate
// directions (an edge exactly parallel to u).
func (b *Boundary) silhouetteIndices(u Vec) (s1, s2 int, ok bool) {
	n := len(b.verts)
	if n < 8 {
		return 0, 0, false
	}
	// g(i) = cross(u, e_i) = dot(perp(u), e_i): the edge loop's projection
	// onto the direction perpendicular to u rises on one run and falls on
	// the other; the run boundaries are the silhouette vertices.
	g := func(i int) float64 {
		v := b.verts[i%n]
		w := b.verts[(i+1)%n]
		return u.Cross(w.Sub(v))
	}
	g0 := g(0)
	if g0 == 0 {
		return 0, 0, false
	}
	// side(j): vertex j's perpendicular projection relative to vertex 0;
	// strictly monotone along each run, so it disambiguates vertex 0's run
	// from its wrapped tail.
	v0 := b.verts[0]
	side := func(j int) float64 { return u.Cross(b.verts[j].Sub(v0)) }

	var pred func(int) bool
	if g0 > 0 {
		pred = func(j int) bool { return g(j) > 0 && side(j) > 0 }
	} else {
		pred = func(j int) bool { return g(j) < 0 && side(j) < 0 }
	}
	lo, hi := 0, n-1
	if pred(n - 1) {
		return 0, 0, false
	}
	for lo+1 < hi {
		if mid := (lo + hi) / 2; pred(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	a := hi

	lo, hi = a, n
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if gm := g(mid); (g0 > 0) == (gm > 0) && gm != 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	c := hi % n

	if !b.isSilhouetteStrict(a, u) || !b.isSilhouetteStrict(c, u) || a == c {
		return 0, 0, false
	}
	if a < c {
		return a, c, true
	}
	return c, a, true
}

// isSilhouetteStrict verifies the reference scan's silhouette condition at
// vertex i with strict inequality.
func (b *Boundary) isSilhouetteStrict(i int, u Vec) bool {
	n := len(b.verts)
	v := b.verts[i]
	s1 := u.Cross(b.verts[(i-1+n)%n].Sub(v))
	s2 := u.Cross(b.verts[(i+1)%n].Sub(v))
	return s1*s2 > 0
}
