package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestFarFieldIsLimitOfNearField cross-validates the two independent path
// computations: the far-field (parallel-ray) extra distance must equal the
// limit of the exterior geodesic from a very distant point source, minus
// the source distance. This ties FarFieldPath and ShortestExteriorPath to
// the same physics.
func TestFarFieldIsLimitOfNearField(t *testing.T) {
	b := circleBoundary(t, 0.09, 2048) // head-sized circle
	const far = 500.0
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		theta := rng.Float64() * 2 * math.Pi
		earIdx := rng.Intn(b.NumVertices())
		extra, _ := b.FarFieldPath(theta, earIdx)
		src := FromPolar(theta, far)
		path, err := b.ShortestExteriorPath(src, earIdx)
		if err != nil {
			return false
		}
		nearExtra := path.Length - far
		// At 500 m the residual curvature error is sub-millimetre.
		return math.Abs(nearExtra-extra) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestFarFieldSymmetry: for a circle, the far-field extra distance is
// invariant when both the wave direction and the target rotate together.
func TestFarFieldSymmetry(t *testing.T) {
	b := circleBoundary(t, 0.09, 2048)
	n := b.NumVertices()
	base, _ := b.FarFieldPath(0, 0)
	for _, rot := range []int{n / 8, n / 4, n / 2} {
		theta := 2 * math.Pi * float64(rot) / float64(n)
		got, _ := b.FarFieldPath(theta, rot)
		if math.Abs(got-base) > 1e-6 {
			t.Errorf("rotation by %d broke symmetry: %g vs %g", rot, got, base)
		}
	}
}

// TestShadowArcGrowsWithDepth: the farther the target sits behind the
// silhouette, the longer the creeping arc.
func TestShadowArcGrowsWithDepth(t *testing.T) {
	b := circleBoundary(t, 0.09, 2048)
	// Wave propagating toward +X (source on the -X side, polar angle
	// pi/2); the deepest shadow point is (r, 0) at polar angle 3pi/2.
	// Targets approaching it from the silhouette must creep further.
	prev := -1.0
	for _, frac := range []float64{0.55, 0.60, 0.65, 0.70, 0.745} {
		idx := b.NearestVertex(FromPolar(2*math.Pi*frac, 0.09))
		_, arc := b.FarFieldPath(math.Pi/2, idx)
		if arc <= prev {
			t.Fatalf("arc should grow toward the deep shadow: %g after %g at frac %g", arc, prev, frac)
		}
		prev = arc
	}
}
