// Package geom provides the 2-D computational geometry substrate for the
// head-diffraction model: vectors, polar coordinates, the two-half-ellipse
// head boundary, convex polyline tangents, and exact shortest exterior
// ("creeping wave") paths around convex obstacles.
//
// Coordinate convention, shared with the rest of the repository: the head
// center is the origin, +Y points out of the nose (front), +X points out of
// the right ear. Polar angle θ is measured in radians from the +Y (nose)
// axis, increasing toward the left ear (counter-clockwise seen from above),
// so θ=0 is straight ahead, θ=π/2 is the left ear side, θ=π is behind the
// head. This matches the paper's [0°,180°] sweep with the source on the
// user's left.
package geom

import "math"

// Vec is a 2-D vector / point.
type Vec struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by k.
func (v Vec) Scale(k float64) Vec { return Vec{v.X * k, v.Y * k} }

// Dot returns the dot product of v and w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the z component of the 3-D cross product of v and w.
func (v Vec) Cross(w Vec) float64 { return v.X*w.Y - v.Y*w.X }

// Norm returns the Euclidean length of v.
func (v Vec) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Dist returns the Euclidean distance between v and w.
func (v Vec) Dist(w Vec) float64 { return v.Sub(w).Norm() }

// Unit returns v scaled to unit length (zero vector unchanged).
func (v Vec) Unit() Vec {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// PolarAngle returns the polar angle θ of v in [0, 2π): the angle from the
// +Y (nose) axis increasing counter-clockwise (toward +(-X)... i.e. toward
// the left-ear side first, matching the paper's sweep direction).
func (v Vec) PolarAngle() float64 {
	// atan2 measured from +Y toward -X: θ = atan2(-x, y).
	a := math.Atan2(-v.X, v.Y)
	if a < 0 {
		a += 2 * math.Pi
	}
	return a
}

// FromPolar builds the point at polar angle theta (see PolarAngle) and
// radius r.
func FromPolar(theta, r float64) Vec {
	return Vec{X: -r * math.Sin(theta), Y: r * math.Cos(theta)}
}

// Degrees converts radians to degrees.
func Degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Radians converts degrees to radians.
func Radians(deg float64) float64 { return deg * math.Pi / 180 }

// NormalizeAngle wraps an angle in radians to [0, 2π).
func NormalizeAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a < 0 {
		a += 2 * math.Pi
	}
	return a
}

// AngleDiff returns the smallest absolute difference between two angles in
// radians, in [0, π].
func AngleDiff(a, b float64) float64 {
	d := math.Mod(a-b, 2*math.Pi)
	if d < 0 {
		d += 2 * math.Pi
	}
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d
}

// AngleDiffDeg returns the smallest absolute difference between two angles
// in degrees, in [0, 180].
func AngleDiffDeg(a, b float64) float64 {
	d := math.Mod(a-b, 360)
	if d < 0 {
		d += 360
	}
	if d > 180 {
		d = 360 - d
	}
	return d
}
