package geom

import (
	"errors"
	"math"
)

// ErrInsideBoundary is returned when a path query is made for a point that
// lies strictly inside the obstacle.
var ErrInsideBoundary = errors.New("geom: point lies inside the boundary")

// Boundary is a closed convex polyline (counter-clockwise vertex order) with
// precomputed cumulative arc lengths. It models a convex obstacle — here,
// the horizontal cross-section of a human head — around which sound
// diffracts.
type Boundary struct {
	verts []Vec
	// cum[i] is the arc length from verts[0] to verts[i] walking CCW;
	// perim is the total perimeter.
	cum   []float64
	perim float64
	// center is the vertex centroid (interior, by convexity) and boundR2
	// the squared radius of the bounding circle around it: together they
	// give an O(1) "definitely outside" test that lets the hot path skip
	// the O(n) Contains scan for the common far-exterior query.
	center  Vec
	boundR2 float64
}

// NewBoundary builds a Boundary from CCW-ordered vertices. At least 3
// vertices are required; the polyline is assumed convex (the head model
// guarantees this).
func NewBoundary(verts []Vec) (*Boundary, error) {
	if len(verts) < 3 {
		return nil, errors.New("geom: boundary needs at least 3 vertices")
	}
	b := &Boundary{verts: append([]Vec(nil), verts...)}
	b.cum = make([]float64, len(verts))
	for i := 1; i < len(verts); i++ {
		b.cum[i] = b.cum[i-1] + verts[i].Dist(verts[i-1])
	}
	b.perim = b.cum[len(verts)-1] + verts[0].Dist(verts[len(verts)-1])
	for _, v := range b.verts {
		b.center = b.center.Add(v)
	}
	b.center = b.center.Scale(1 / float64(len(b.verts)))
	for _, v := range b.verts {
		d := v.Sub(b.center)
		if r2 := d.Dot(d); r2 > b.boundR2 {
			b.boundR2 = r2
		}
	}
	return b, nil
}

// NumVertices returns the vertex count.
func (b *Boundary) NumVertices() int { return len(b.verts) }

// Vertex returns vertex i.
func (b *Boundary) Vertex(i int) Vec { return b.verts[i] }

// Perimeter returns the total boundary length.
func (b *Boundary) Perimeter() float64 { return b.perim }

// NearestVertex returns the index of the vertex closest to p.
func (b *Boundary) NearestVertex(p Vec) int {
	best, bestD := 0, math.Inf(1)
	for i, v := range b.verts {
		if d := v.Dist(p); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// inside is Contains with the bounding-circle fast path: points beyond the
// circumscribed circle are rejected in O(1), everything else falls through
// to the exact scan. Decision-identical to Contains.
func (b *Boundary) inside(p Vec) bool {
	d := p.Sub(b.center)
	if d.Dot(d) > b.boundR2 {
		return false
	}
	return b.Contains(p)
}

// Contains reports whether p lies strictly inside the boundary.
func (b *Boundary) Contains(p Vec) bool {
	n := len(b.verts)
	for i := 0; i < n; i++ {
		a := b.verts[i]
		c := b.verts[(i+1)%n]
		if c.Sub(a).Cross(p.Sub(a)) <= 0 {
			return false
		}
	}
	return true
}

// arc returns the walk length from vertex i to vertex j. ccw selects the
// walking direction.
func (b *Boundary) arc(i, j int, ccw bool) float64 {
	fwd := b.cum[j] - b.cum[i]
	if fwd < 0 {
		fwd += b.perim
	}
	if ccw {
		return fwd
	}
	return b.perim - fwd
}

// ArcBetween returns the CCW walk length from vertex i to vertex j.
func (b *Boundary) ArcBetween(i, j int) float64 { return b.arc(i, j, true) }

// directionEntersInterior reports whether direction d, leaving boundary
// vertex i, points strictly into the interior.
func (b *Boundary) directionEntersInterior(i int, d Vec) bool {
	n := len(b.verts)
	q := b.verts[i]
	next := b.verts[(i+1)%n]
	prev := b.verts[(i-1+n)%n]
	e1 := next.Sub(q) // edge leaving q (CCW)
	e2 := q.Sub(prev) // edge arriving at q (CCW)
	return e1.Cross(d) > 0 && e2.Cross(d) > 0
}

// tangentVerticesScan returns the indices of vertices that are tangent
// points of the boundary as seen from the exterior point p: vertices whose
// two neighbours lie on the same side of the line from p through the
// vertex. This is the O(n) reference implementation; the hot paths use the
// O(log n) tangentIndices and fall back here only on degenerate inputs
// (exactly collinear configurations), and the property tests in
// tangent_test.go hold the two implementations to agreement.
func (b *Boundary) tangentVerticesScan(p Vec) []int {
	n := len(b.verts)
	var out []int
	for i := 0; i < n; i++ {
		v := b.verts[i]
		d := v.Sub(p)
		s1 := d.Cross(b.verts[(i-1+n)%n].Sub(p))
		s2 := d.Cross(b.verts[(i+1)%n].Sub(p))
		if s1*s2 >= 0 {
			out = append(out, i)
		}
	}
	return out
}

// Path is an exterior shortest path from a point to a boundary vertex.
type Path struct {
	// Length is the total geometric length of the path.
	Length float64
	// Direct is true when the straight segment is unobstructed.
	Direct bool
	// TangentIndex is the boundary vertex where the path meets the
	// obstacle (meaningful when !Direct).
	TangentIndex int
	// ArcLength is the portion of Length spent creeping along the
	// boundary (0 when Direct).
	ArcLength float64
}

// ShortestExteriorPath returns the shortest path from exterior point p to
// boundary vertex earIdx that does not cross the interior: either the
// straight segment, or a tangent segment followed by an arc along the
// boundary (the diffraction path). This is exact for convex boundaries
// because the geodesic around a convex obstacle consists of a tangent
// segment plus a boundary walk.
func (b *Boundary) ShortestExteriorPath(p Vec, earIdx int) (Path, error) {
	if b.inside(p) {
		return Path{}, ErrInsideBoundary
	}
	ear := b.verts[earIdx]
	d := p.Sub(ear)
	if !b.directionEntersInterior(earIdx, d) {
		return Path{Length: p.Dist(ear), Direct: true}, nil
	}
	if t1, t2, ok := b.tangentIndices(p); ok {
		return b.diffractedPath(p, earIdx, t1, t2), nil
	}
	return b.shortestExteriorPathScan(p, earIdx), nil
}

// diffractedPath evaluates the creeping-wave candidates through the two
// tangent vertices t1 < t2 and returns the shortest. The candidate order
// (ascending tangent index, CCW before CW) and the strict-less comparison
// replicate the reference scan exactly, so ties break identically.
func (b *Boundary) diffractedPath(p Vec, earIdx, t1, t2 int) Path {
	ear := b.verts[earIdx]
	best := Path{Length: math.Inf(1)}
	for _, ti := range [2]int{t1, t2} {
		t := b.verts[ti]
		seg := p.Dist(t)
		for _, ccw := range [2]bool{true, false} {
			arc := b.arc(ti, earIdx, ccw)
			if l := seg + arc; l < best.Length {
				best = Path{Length: l, TangentIndex: ti, ArcLength: arc}
			}
		}
	}
	if math.IsInf(best.Length, 1) {
		// Degenerate (p on the boundary): fall back to direct distance.
		return Path{Length: p.Dist(ear), Direct: true}
	}
	return best
}

// shortestExteriorPathScan is the O(n) reference diffraction solve, kept
// for degenerate inputs and as the oracle for the property tests. It must
// be called with p exterior and the direct segment already ruled out.
func (b *Boundary) shortestExteriorPathScan(p Vec, earIdx int) Path {
	ear := b.verts[earIdx]
	best := Path{Length: math.Inf(1)}
	for _, ti := range b.tangentVerticesScan(p) {
		t := b.verts[ti]
		seg := p.Dist(t)
		for _, ccw := range []bool{true, false} {
			arc := b.arc(ti, earIdx, ccw)
			if l := seg + arc; l < best.Length {
				best = Path{Length: l, TangentIndex: ti, ArcLength: arc}
			}
		}
	}
	if math.IsInf(best.Length, 1) {
		// Degenerate (p on the boundary): fall back to direct distance.
		return Path{Length: p.Dist(ear), Direct: true}
	}
	return best
}

// FarFieldPath returns the extra path length (relative to a plane wavefront
// through the origin) travelled by a parallel wave arriving from polar angle
// theta (radians, see Vec.PolarAngle) to reach boundary vertex earIdx, along
// with the creeping-arc component. Negative values mean the vertex is hit
// before the wavefront reaches the origin plane.
func (b *Boundary) FarFieldPath(theta float64, earIdx int) (extra, arc float64) {
	u := FromPolar(theta, 1) // unit vector pointing toward the source
	ear := b.verts[earIdx]
	if !b.directionEntersInterior(earIdx, u) {
		// Lit: the ray reaches the ear directly.
		return -ear.Dot(u), 0
	}
	// Shadowed: the wave grazes a silhouette vertex (boundary tangent
	// parallel to the propagation direction) then creeps to the ear. The
	// silhouette vertices are the two extreme vertices perpendicular to u,
	// found in O(log n); exactly-parallel edges fall back to the scan.
	if s1, s2, ok := b.silhouetteIndices(u); ok {
		bestExtra, bestArc := math.Inf(1), 0.0
		for _, i := range [2]int{s1, s2} {
			v := b.verts[i]
			for _, ccw := range [2]bool{true, false} {
				a := b.arc(i, earIdx, ccw)
				e := -v.Dot(u) + a
				if e < bestExtra {
					bestExtra, bestArc = e, a
				}
			}
		}
		if !math.IsInf(bestExtra, 1) {
			return bestExtra, bestArc
		}
	}
	return b.farFieldPathScan(u, earIdx)
}

// farFieldPathScan is the O(n) reference silhouette solve, kept for
// degenerate directions and as the oracle for the property tests. It must
// be called with the ear already known to be shadowed.
func (b *Boundary) farFieldPathScan(u Vec, earIdx int) (extra, arc float64) {
	n := len(b.verts)
	ear := b.verts[earIdx]
	bestExtra, bestArc := math.Inf(1), 0.0
	for i := 0; i < n; i++ {
		v := b.verts[i]
		s1 := u.Cross(b.verts[(i-1+n)%n].Sub(v))
		s2 := u.Cross(b.verts[(i+1)%n].Sub(v))
		if s1*s2 < 0 {
			continue // not a silhouette vertex
		}
		for _, ccw := range []bool{true, false} {
			a := b.arc(i, earIdx, ccw)
			e := -v.Dot(u) + a
			if e < bestExtra {
				bestExtra, bestArc = e, a
			}
		}
	}
	if math.IsInf(bestExtra, 1) {
		return -ear.Dot(u), 0
	}
	return bestExtra, bestArc
}
