package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVecOps(t *testing.T) {
	a := Vec{1, 2}
	b := Vec{3, -1}
	if got := a.Add(b); got != (Vec{4, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec{-2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Dot(b); got != 1 {
		t.Errorf("Dot = %g", got)
	}
	if got := a.Cross(b); got != -7 {
		t.Errorf("Cross = %g", got)
	}
	if got := (Vec{3, 4}).Norm(); got != 5 {
		t.Errorf("Norm = %g", got)
	}
	if got := a.Dist(b); math.Abs(got-math.Sqrt(13)) > 1e-12 {
		t.Errorf("Dist = %g", got)
	}
	u := (Vec{0, 2}).Unit()
	if math.Abs(u.Norm()-1) > 1e-12 {
		t.Errorf("Unit norm = %g", u.Norm())
	}
	if (Vec{}).Unit() != (Vec{}) {
		t.Error("zero Unit should stay zero")
	}
}

func TestPolarRoundTrip(t *testing.T) {
	f := func(rawTheta, rawR float64) bool {
		theta := math.Mod(math.Abs(rawTheta), 2*math.Pi)
		r := 0.1 + math.Mod(math.Abs(rawR), 10)
		p := FromPolar(theta, r)
		if math.Abs(p.Norm()-r) > 1e-9 {
			return false
		}
		return AngleDiff(p.PolarAngle(), theta) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPolarConvention(t *testing.T) {
	// theta=0 is the nose (+Y), theta=pi/2 is the left ear (-X).
	front := FromPolar(0, 1)
	if math.Abs(front.X) > 1e-12 || math.Abs(front.Y-1) > 1e-12 {
		t.Errorf("front = %v, want (0,1)", front)
	}
	left := FromPolar(math.Pi/2, 1)
	if math.Abs(left.X+1) > 1e-12 || math.Abs(left.Y) > 1e-12 {
		t.Errorf("left = %v, want (-1,0)", left)
	}
	back := FromPolar(math.Pi, 1)
	if math.Abs(back.Y+1) > 1e-12 {
		t.Errorf("back = %v, want (0,-1)", back)
	}
	right := FromPolar(3*math.Pi/2, 1)
	if math.Abs(right.X-1) > 1e-12 {
		t.Errorf("right = %v, want (1,0)", right)
	}
}

func TestAngleDiff(t *testing.T) {
	if d := AngleDiff(0.1, 2*math.Pi-0.1); math.Abs(d-0.2) > 1e-12 {
		t.Errorf("wraparound AngleDiff = %g, want 0.2", d)
	}
	if d := AngleDiffDeg(10, 350); math.Abs(d-20) > 1e-12 {
		t.Errorf("AngleDiffDeg = %g, want 20", d)
	}
	if d := AngleDiffDeg(0, 180); math.Abs(d-180) > 1e-12 {
		t.Errorf("AngleDiffDeg = %g, want 180", d)
	}
}

func TestDegreesRadians(t *testing.T) {
	if math.Abs(Degrees(math.Pi)-180) > 1e-12 {
		t.Error("Degrees wrong")
	}
	if math.Abs(Radians(90)-math.Pi/2) > 1e-12 {
		t.Error("Radians wrong")
	}
}

func TestNormalizeAngle(t *testing.T) {
	if got := NormalizeAngle(-math.Pi / 2); math.Abs(got-3*math.Pi/2) > 1e-12 {
		t.Errorf("NormalizeAngle(-pi/2) = %g", got)
	}
	if got := NormalizeAngle(5 * math.Pi); math.Abs(got-math.Pi) > 1e-12 {
		t.Errorf("NormalizeAngle(5pi) = %g", got)
	}
}
