package geom

import (
	"math"
	"math/rand"
	"testing"
)

// ellipseBoundary builds a randomized convex boundary: an axis-lengths
// (a, b) ellipse rotated by phi and centred at c, sampled at n vertices.
// Ellipses are always strictly convex, so every instance is a valid
// Boundary, and varying (a, b, phi, c, n) exercises asymmetric and
// off-centre obstacles the head model never produces.
func ellipseBoundary(t testing.TB, a, b, phi float64, c Vec, n int) *Boundary {
	t.Helper()
	verts := make([]Vec, n)
	cos, sin := math.Cos(phi), math.Sin(phi)
	for i := 0; i < n; i++ {
		theta := 2 * math.Pi * float64(i) / float64(n)
		x := a * math.Cos(theta)
		y := b * math.Sin(theta)
		verts[i] = Vec{X: c.X + x*cos - y*sin, Y: c.Y + x*sin + y*cos}
	}
	bnd, err := NewBoundary(verts)
	if err != nil {
		t.Fatal(err)
	}
	return bnd
}

// randomEllipse draws boundary parameters from rng. Vertex counts cover
// odd, even, and prime sizes to shake out wrap-around index bugs.
func randomEllipse(t testing.TB, rng *rand.Rand) *Boundary {
	ns := []int{8, 9, 13, 36, 97, 120, 240}
	return ellipseBoundary(t,
		0.05+0.1*rng.Float64(),
		0.05+0.1*rng.Float64(),
		2*math.Pi*rng.Float64(),
		Vec{X: 0.02 * (rng.Float64() - 0.5), Y: 0.02 * (rng.Float64() - 0.5)},
		ns[rng.Intn(len(ns))])
}

// randomExterior draws a point outside b, from just past the boundary out
// to the far field.
func randomExterior(b *Boundary, rng *rand.Rand) Vec {
	for {
		theta := 2 * math.Pi * rng.Float64()
		r := math.Sqrt(b.boundR2) * (1.001 + 4*rng.Float64())
		p := b.center.Add(FromPolar(theta, r))
		if !b.Contains(p) {
			return p
		}
	}
}

// strictScanTangents filters the reference scan down to its strict
// condition (s1*s2 > 0), which is what the binary search promises to find.
func (b *Boundary) strictScanTangents(p Vec) []int {
	var out []int
	for _, i := range b.tangentVerticesScan(p) {
		if b.isTangentStrict(i, p) {
			out = append(out, i)
		}
	}
	return out
}

// TestTangentIndicesMatchScan drives the O(log n) tangent search against
// the O(n) reference scan on randomized convex boundaries: whenever the
// binary search reports ok it must return exactly the scan's strict
// tangent pair.
func TestTangentIndicesMatchScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	okCount := 0
	for trial := 0; trial < 300; trial++ {
		b := randomEllipse(t, rng)
		for q := 0; q < 20; q++ {
			p := randomExterior(b, rng)
			t1, t2, ok := b.tangentIndices(p)
			if !ok {
				continue // degenerate: scan path takes over, nothing to check
			}
			okCount++
			want := b.strictScanTangents(p)
			if len(want) != 2 || want[0] != t1 || want[1] != t2 {
				t.Fatalf("boundary n=%d p=%v: binary search gave (%d,%d), scan strict tangents %v",
					b.NumVertices(), p, t1, t2, want)
			}
		}
	}
	if okCount < 5000 {
		t.Fatalf("binary search only succeeded %d times; fast path is not actually being exercised", okCount)
	}
}

// TestTangentIndicesDegenerate aims queries at exactly-collinear
// configurations — points on extended edge lines and on vertex rays, where
// cross products can be exactly zero — and requires either a verified
// agreement with the scan or a clean ok=false fallback. Either way the
// public path result must be bit-identical to the reference scan.
func TestTangentIndicesDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		b := randomEllipse(t, rng)
		n := b.NumVertices()
		for i := 0; i < n; i += 1 + n/17 {
			v := b.Vertex(i)
			w := b.Vertex((i + 1) % n)
			for _, tt := range []float64{0.25, 1.0, 3.5} {
				// On the extended edge line beyond w (exterior by convexity).
				p := w.Add(w.Sub(v).Scale(tt))
				if b.Contains(p) {
					continue
				}
				checkPathAgainstScan(t, b, p)
				// On the outward vertex ray through v (near-tangent from far away).
				p = v.Add(v.Sub(b.center).Scale(tt))
				if b.Contains(p) {
					continue
				}
				checkPathAgainstScan(t, b, p)
			}
		}
	}
}

// checkPathAgainstScan asserts ShortestExteriorPath (binary-search fast
// path) is bit-identical to the reference scan for every ear vertex.
func checkPathAgainstScan(t *testing.T, b *Boundary, p Vec) {
	t.Helper()
	n := b.NumVertices()
	for _, earIdx := range []int{0, n / 3, n - 1} {
		got, err := b.ShortestExteriorPath(p, earIdx)
		if err != nil {
			t.Fatal(err)
		}
		var want Path
		if !b.directionEntersInterior(earIdx, p.Sub(b.Vertex(earIdx))) {
			want = Path{Length: p.Dist(b.Vertex(earIdx)), Direct: true}
		} else {
			want = b.shortestExteriorPathScan(p, earIdx)
		}
		if got != want {
			t.Fatalf("ear %d p=%v: fast path %+v != scan %+v", earIdx, p, got, want)
		}
	}
}

// TestShortestExteriorPathMatchesScanRandom is the broad randomized
// bit-equality sweep: fast path vs reference scan over many boundaries,
// exterior points and ear vertices.
func TestShortestExteriorPathMatchesScanRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 200; trial++ {
		b := randomEllipse(t, rng)
		for q := 0; q < 10; q++ {
			checkPathAgainstScan(t, b, randomExterior(b, rng))
		}
	}
}

// TestSilhouetteIndicesMatchScan holds the O(log n) silhouette search to
// the reference far-field scan: FarFieldPath must be bit-identical to
// farFieldPathScan for shadowed ears across random directions, including
// directions exactly parallel to an edge (forced degeneracy).
func TestSilhouetteIndicesMatchScan(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		b := randomEllipse(t, rng)
		n := b.NumVertices()
		thetas := make([]float64, 0, 40+3)
		for q := 0; q < 40; q++ {
			thetas = append(thetas, 2*math.Pi*rng.Float64())
		}
		// Degenerate directions: exactly along edge vectors.
		for _, i := range []int{0, n / 2, n - 2} {
			e := b.Vertex((i + 1) % n).Sub(b.Vertex(i))
			thetas = append(thetas, e.PolarAngle())
		}
		for _, theta := range thetas {
			u := FromPolar(theta, 1)
			for _, earIdx := range []int{0, n / 4, n - 1} {
				gotE, gotA := b.FarFieldPath(theta, earIdx)
				var wantE, wantA float64
				if !b.directionEntersInterior(earIdx, u) {
					wantE, wantA = -b.Vertex(earIdx).Dot(u), 0
				} else {
					wantE, wantA = b.farFieldPathScan(u, earIdx)
				}
				if gotE != wantE || gotA != wantA {
					t.Fatalf("theta=%v ear=%d: fast (%v,%v) != scan (%v,%v)",
						theta, earIdx, gotE, gotA, wantE, wantA)
				}
			}
		}
	}
}

// TestSweepRingMatchesPointQueries requires the batched ring sweep to be
// bit-identical to independent per-point queries — the contract that lets
// the Localizer build through SweepRing without disturbing the golden
// output.
func TestSweepRingMatchesPointQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(2718))
	for trial := 0; trial < 60; trial++ {
		b := randomEllipse(t, rng)
		numAngles := 48 + rng.Intn(120)
		thetas := make([]float64, numAngles)
		for j := range thetas {
			thetas[j] = 2 * math.Pi * float64(j) / float64(numAngles)
		}
		r := math.Sqrt(b.boundR2)*1.02 + 0.3*rng.Float64()
		// Skip radii whose ring dips inside the (possibly off-centre) boundary.
		ringOK := true
		for _, theta := range thetas {
			if b.inside(FromPolar(theta, r)) {
				ringOK = false
				break
			}
		}
		if !ringOK {
			continue
		}
		out := make([]Path, numAngles)
		for _, earIdx := range []int{0, b.NumVertices() / 2} {
			if err := b.SweepRing(thetas, r, earIdx, out); err != nil {
				t.Fatal(err)
			}
			for j, theta := range thetas {
				want, err := b.ShortestExteriorPath(FromPolar(theta, r), earIdx)
				if err != nil {
					t.Fatal(err)
				}
				if out[j] != want {
					t.Fatalf("ear %d theta=%v r=%v: sweep %+v != point query %+v",
						earIdx, theta, r, out[j], want)
				}
			}
		}
	}
}

// TestSweepGridMatchesPointQueries checks the grid wrapper's strided
// layout against per-point queries.
func TestSweepGridMatchesPointQueries(t *testing.T) {
	b := ellipseBoundary(t, 0.09, 0.07, 0.3, Vec{}, 120)
	thetas := make([]float64, 60)
	for j := range thetas {
		thetas[j] = 2 * math.Pi * float64(j) / float64(len(thetas))
	}
	radii := []float64{0.12, 0.2, 0.35, 0.6}
	out := make([]Path, len(thetas)*len(radii))
	if err := b.SweepGrid(thetas, radii, 3, out, nil); err != nil {
		t.Fatal(err)
	}
	for j, theta := range thetas {
		for k, r := range radii {
			want, err := b.ShortestExteriorPath(FromPolar(theta, r), 3)
			if err != nil {
				t.Fatal(err)
			}
			if out[j*len(radii)+k] != want {
				t.Fatalf("(%d,%d): grid %+v != point %+v", j, k, out[j*len(radii)+k], want)
			}
		}
	}
}

// TestSweepRingErrors covers the buffer and interior-point error paths.
func TestSweepRingErrors(t *testing.T) {
	b := ellipseBoundary(t, 0.09, 0.07, 0, Vec{}, 24)
	if err := b.SweepRing([]float64{0, 1}, 0.3, 0, make([]Path, 1)); err != errSweepOut {
		t.Fatalf("short buffer: got %v", err)
	}
	if err := b.SweepRing([]float64{0}, 0.01, 0, make([]Path, 1)); err != ErrInsideBoundary {
		t.Fatalf("interior ring: got %v", err)
	}
	if err := b.SweepGrid([]float64{0, 1}, []float64{0.3}, 0, make([]Path, 1), nil); err != errSweepOut {
		t.Fatalf("short grid buffer: got %v", err)
	}
}

// TestPathQueriesAllocationFree pins the fast paths at zero allocations
// per query — the property the Localizer build relies on to cut the
// per-Personalize allocation count.
func TestPathQueriesAllocationFree(t *testing.T) {
	b := ellipseBoundary(t, 0.09, 0.07, 0.2, Vec{}, 240)
	p := Vec{X: 0.4, Y: 0.3}
	if avg := testing.AllocsPerRun(100, func() {
		if _, err := b.ShortestExteriorPath(p, 5); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("ShortestExteriorPath allocates %v per query; want 0", avg)
	}
	thetas := make([]float64, 240)
	for j := range thetas {
		thetas[j] = 2 * math.Pi * float64(j) / 240
	}
	out := make([]Path, len(thetas))
	if avg := testing.AllocsPerRun(20, func() {
		if err := b.SweepRing(thetas, 0.35, 5, out); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("SweepRing allocates %v per ring; want 0", avg)
	}
}
