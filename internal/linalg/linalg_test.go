package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnownSystem(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := SolveInPlace(a.Clone(), []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 5, x + 3y = 10 -> x = 1, y = 3.
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("solution %v, want [1 3]", x)
	}
}

func TestSolveRandomRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		// Diagonal dominance keeps it well-conditioned.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		truth := make([]float64, n)
		for i := range truth {
			truth[i] = rng.NormFloat64()
		}
		b := a.MulVec(truth)
		x, err := SolveInPlace(a.Clone(), b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-truth[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSolveSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := SolveInPlace(a, []float64{1, 2}); err != ErrSingular {
		t.Errorf("expected ErrSingular, got %v", err)
	}
}

func TestSolveDimensionMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := SolveInPlace(a, []float64{1, 2}); err == nil {
		t.Error("non-square solve should fail")
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2x + 1 from noisy samples.
	rng := rand.New(rand.NewSource(4))
	n := 50
	a := NewMatrix(n, 2)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		x := float64(i) / 10
		a.Set(i, 0, x)
		a.Set(i, 1, 1)
		b[i] = 2*x + 1 + 0.01*rng.NormFloat64()
	}
	sol, err := LeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol[0]-2) > 0.02 || math.Abs(sol[1]-1) > 0.02 {
		t.Errorf("fit %v, want [2 1]", sol)
	}
}

func TestLeastSquaresRegularization(t *testing.T) {
	// A rank-deficient system becomes solvable with Tikhonov damping and
	// the damped solution has the smaller norm.
	a := NewMatrix(3, 2)
	for i := 0; i < 3; i++ {
		a.Set(i, 0, 1)
		a.Set(i, 1, 1) // identical columns: rank 1
	}
	if _, err := LeastSquares(a, []float64{1, 1, 1}, 0); err == nil {
		t.Error("rank-deficient plain LS should fail")
	}
	sol, err := LeastSquares(a, []float64{1, 1, 1}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// Minimum-norm solution splits the weight evenly.
	if math.Abs(sol[0]-sol[1]) > 1e-6 {
		t.Errorf("regularized solution %v should be symmetric", sol)
	}
}

func TestCondEstimate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Identity: condition 1.
	eye := NewMatrix(4, 4)
	for i := 0; i < 4; i++ {
		eye.Set(i, i, 1)
	}
	if c := CondEstimate(eye, 0, rng); c > 1.5 {
		t.Errorf("identity condition %g, want ~1", c)
	}
	// Diagonal with spread 1..1000: condition ~1000.
	d := NewMatrix(3, 3)
	d.Set(0, 0, 1)
	d.Set(1, 1, 30)
	d.Set(2, 2, 1000)
	c := CondEstimate(d, 0, rng)
	if c < 300 || c > 3000 {
		t.Errorf("diagonal condition %g, want ~1000", c)
	}
	// Singular: +Inf (or astronomically large).
	s := NewMatrix(2, 2)
	s.Set(0, 0, 1)
	s.Set(0, 1, 1)
	s.Set(1, 0, 1)
	s.Set(1, 1, 1)
	if c := CondEstimate(s, 0, rng); !math.IsInf(c, 1) && c < 1e6 {
		t.Errorf("singular condition %g, want huge", c)
	}
}

func TestGramAndTranspose(t *testing.T) {
	a := NewMatrix(2, 3)
	for i, v := range []float64{1, 2, 3, 4, 5, 6} {
		a.Data[i] = v
	}
	g := a.Gram()
	// G = AᵀA; check a couple entries.
	if g.At(0, 0) != 1*1+4*4 || g.At(1, 2) != 2*3+5*6 {
		t.Errorf("gram wrong: %+v", g)
	}
	tv := a.TransposeMulVec([]float64{1, 1})
	want := []float64{5, 7, 9}
	for i := range want {
		if tv[i] != want[i] {
			t.Errorf("TransposeMulVec = %v", tv)
		}
	}
}
