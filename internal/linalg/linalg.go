// Package linalg provides the small dense linear-algebra kernel used by the
// paper's §4.3 "additional attempts" (speaker-beamforming decomposition and
// blind decoupling): dense matrices, Gaussian elimination with partial
// pivoting, least squares via normal equations, and condition-number
// estimation by power iteration — enough to demonstrate *why* those
// attempts fail (ill-ranked systems), with the standard library only.
package linalg

import (
	"errors"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec returns m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// TransposeMulVec returns mᵀ·x.
func (m *Matrix) TransposeMulVec(x []float64) []float64 {
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			out[j] += v * xi
		}
	}
	return out
}

// Gram returns mᵀ·m (the normal-equations matrix).
func (m *Matrix) Gram() *Matrix {
	g := NewMatrix(m.Cols, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for a := 0; a < m.Cols; a++ {
			va := row[a]
			if va == 0 {
				continue
			}
			for b := a; b < m.Cols; b++ {
				g.Data[a*m.Cols+b] += va * row[b]
			}
		}
	}
	for a := 0; a < m.Cols; a++ {
		for b := 0; b < a; b++ {
			g.Data[a*m.Cols+b] = g.Data[b*m.Cols+a]
		}
	}
	return g
}

// ErrSingular is returned when elimination meets a (near-)zero pivot.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// SolveInPlace solves A·x = b by Gaussian elimination with partial
// pivoting, destroying A and b. A must be square.
func SolveInPlace(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, errors.New("linalg: dimension mismatch")
	}
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				best, piv = v, r
			}
		}
		if best < 1e-14 {
			return nil, ErrSingular
		}
		if piv != col {
			for j := 0; j < n; j++ {
				a.Data[col*n+j], a.Data[piv*n+j] = a.Data[piv*n+j], a.Data[col*n+j]
			}
			b[col], b[piv] = b[piv], b[col]
		}
		inv := 1 / a.At(col, col)
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a.Data[r*n+j] -= f * a.Data[col*n+j]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= a.At(i, j) * x[j]
		}
		x[i] = s / a.At(i, i)
	}
	return x, nil
}

// LeastSquares solves min ‖A·x − b‖² via Tikhonov-regularized normal
// equations (AᵀA + λI)x = Aᵀb. λ=0 gives plain least squares.
func LeastSquares(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	if len(b) != a.Rows {
		return nil, errors.New("linalg: dimension mismatch")
	}
	g := a.Gram()
	for i := 0; i < g.Rows; i++ {
		g.Data[i*g.Cols+i] += lambda
	}
	rhs := a.TransposeMulVec(b)
	return SolveInPlace(g, rhs)
}

// CondEstimate estimates the 2-norm condition number of A via power
// iteration on AᵀA (largest singular value) and inverse power iteration
// (smallest). Returns +Inf for singular matrices.
func CondEstimate(a *Matrix, iters int, rng *rand.Rand) float64 {
	if iters <= 0 {
		iters = 60
	}
	g := a.Gram()
	n := g.Rows
	// Largest eigenvalue of G by power iteration.
	x := randVec(n, rng)
	var large float64
	for k := 0; k < iters; k++ {
		y := g.MulVec(x)
		large = norm(y)
		if large == 0 {
			return math.Inf(1)
		}
		scale(y, 1/large)
		x = y
	}
	// Smallest eigenvalue via inverse iteration with a tiny shift.
	shift := large * 1e-13
	x = randVec(n, rng)
	var small float64
	for k := 0; k < iters; k++ {
		m := g.Clone()
		for i := 0; i < n; i++ {
			m.Data[i*n+i] += shift
		}
		bb := append([]float64(nil), x...)
		y, err := SolveInPlace(m, bb)
		if err != nil {
			return math.Inf(1)
		}
		ny := norm(y)
		if ny == 0 {
			return math.Inf(1)
		}
		scale(y, 1/ny)
		x = y
		// Rayleigh quotient on G.
		gx := g.MulVec(x)
		small = dot(x, gx)
	}
	if small <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(large / small)
}

func randVec(n int, rng *rand.Rand) []float64 {
	v := make([]float64, n)
	for i := range v {
		if rng != nil {
			v[i] = rng.NormFloat64()
		} else {
			v[i] = 1 / float64(i+1)
		}
	}
	nv := norm(v)
	if nv > 0 {
		scale(v, 1/nv)
	}
	return v
}

func norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func scale(v []float64, k float64) {
	for i := range v {
		v[i] *= k
	}
}
