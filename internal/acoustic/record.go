package acoustic

import (
	"math/rand"

	"repro/internal/dsp"
	"repro/internal/geom"
)

// Recording is one synchronized stereo earbud capture.
type Recording struct {
	// Left and Right are the in-ear microphone signals.
	Left, Right []float64
	// SampleRate in Hz.
	SampleRate float64
}

// RecordOptions tunes a capture.
type RecordOptions struct {
	// System is the speaker–mic response applied to the emitted signal
	// (nil = ideal hardware).
	System *SystemResponse
	// NoiseStd is the per-sample Gaussian sensor/ambient noise standard
	// deviation (relative to a unit-amplitude source at 1 m).
	NoiseStd float64
	// IRLength is the rendered impulse-response length in samples
	// (0 = auto: covers the room's longest echo).
	IRLength int
	// Rng supplies the noise; nil disables noise regardless of NoiseStd.
	Rng *rand.Rand
}

// Record simulates the earbuds capturing the given source signal emitted
// from point p. The returned channels are aligned to a shared clock (the
// paper's phone/earbud synchronization), with the world's lead-in before
// the first arrival.
func (w *World) Record(src []float64, p geom.Vec, opt RecordOptions) (Recording, error) {
	irLen := opt.IRLength
	if irLen <= 0 {
		// Direct path + room detour headroom.
		maxDelay := 0.004 + 0.002 // near-field paths + pinna
		if w.Room.MaxOrder > 0 {
			detour := float64(w.Room.MaxOrder+1) * (w.Room.Width + w.Room.Depth)
			maxDelay = detour/343.0 + 0.002
		}
		irLen = int(maxDelay * w.SampleRate)
	}
	hl, hr, err := w.BinauralIR(p, irLen)
	if err != nil {
		return Recording{}, err
	}
	emitted := src
	if opt.System != nil {
		emitted = opt.System.Apply(src)
	}
	left := dsp.Convolve(emitted, hl)
	right := dsp.Convolve(emitted, hr)
	if opt.Rng != nil && opt.NoiseStd > 0 {
		for i := range left {
			left[i] += opt.Rng.NormFloat64() * opt.NoiseStd
		}
		for i := range right {
			right[i] += opt.Rng.NormFloat64() * opt.NoiseStd
		}
	}
	return Recording{Left: left, Right: right, SampleRate: w.SampleRate}, nil
}

// RecordFarField simulates the earbuds capturing an ambient far-field
// source arriving from polar angle thetaDeg — the input to the AoA
// application (§4.5). Hardware coloration is omitted (ambient sources do
// not pass through the phone speaker) but sensor noise still applies.
func (w *World) RecordFarField(src []float64, thetaDeg float64, opt RecordOptions) (Recording, error) {
	irLen := opt.IRLength
	if irLen <= 0 {
		irLen = int(0.006 * w.SampleRate)
	}
	hl, hr, err := w.FarFieldIR(thetaDeg, irLen)
	if err != nil {
		return Recording{}, err
	}
	left := dsp.Convolve(src, hl)
	right := dsp.Convolve(src, hr)
	if opt.Rng != nil && opt.NoiseStd > 0 {
		for i := range left {
			left[i] += opt.Rng.NormFloat64() * opt.NoiseStd
		}
		for i := range right {
			right[i] += opt.Rng.NormFloat64() * opt.NoiseStd
		}
	}
	return Recording{Left: left, Right: right, SampleRate: w.SampleRate}, nil
}
