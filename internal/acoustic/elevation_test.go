package acoustic

import (
	"math"
	"testing"

	"repro/internal/dsp"
	"repro/internal/geom"
	"repro/internal/head"
)

func TestRingZeroMatchesBaseWorld(t *testing.T) {
	w := testWorld(t, false)
	ring, err := w.Ring(0)
	if err != nil {
		t.Fatal(err)
	}
	irLen := int(0.01 * w.SampleRate)
	az, radius := 60.0, 0.32
	rl, rr, err := ring.BinauralIR(az, radius, irLen)
	if err != nil {
		t.Fatal(err)
	}
	// The horizontal ring at the same position should closely match the
	// base world's IR (same cross-section, zero slant).
	pos := geom.FromPolar(geom.Radians(az), radius)
	bl, br, err := w.BinauralIR(pos, irLen)
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := dsp.NormXCorrPeak(rl, bl)
	cr, _ := dsp.NormXCorrPeak(rr, br)
	if cl < 0.98 || cr < 0.98 {
		t.Errorf("ring(0) should match the base world: corr %.3f / %.3f", cl, cr)
	}
}

func TestRingElevationChangesResponse(t *testing.T) {
	w := testWorld(t, false)
	irLen := int(0.01 * w.SampleRate)
	r0, err := w.Ring(0)
	if err != nil {
		t.Fatal(err)
	}
	r30, err := w.Ring(30)
	if err != nil {
		t.Fatal(err)
	}
	l0, _, err := r0.BinauralIR(70, 0.32, irLen)
	if err != nil {
		t.Fatal(err)
	}
	l30, _, err := r30.BinauralIR(70, 0.32, irLen)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := dsp.NormXCorrPeak(l0, l30)
	if c > 0.995 {
		t.Errorf("elevation should alter the response (corr %.4f)", c)
	}
	if r30.ElevationDeg() != 30 {
		t.Error("elevation lost")
	}
}

func TestRingFirstTapMatchesArrivalDelay(t *testing.T) {
	w := testWorld(t, false)
	ring, err := w.Ring(25)
	if err != nil {
		t.Fatal(err)
	}
	irLen := int(0.012 * w.SampleRate)
	az, radius := 45.0, 0.3
	l, _, err := ring.BinauralIR(az, radius, irLen)
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := dsp.FirstPeak(l, 0.35)
	want, err := ring.ArrivalDelay(az, radius, head.Left)
	if err != nil {
		t.Fatal(err)
	}
	got := (idx - w.LeadInSamples()) / w.SampleRate
	if math.Abs(got-want) > 4e-5 {
		t.Errorf("ring first tap %g, want %g", got, want)
	}
}

func TestRingSlantLengthensPath(t *testing.T) {
	w := testWorld(t, false)
	flat, err := w.Ring(0)
	if err != nil {
		t.Fatal(err)
	}
	steep, err := w.Ring(45)
	if err != nil {
		t.Fatal(err)
	}
	// Same slant radius: the elevated source is farther from the ears in
	// 3-D only via geometry of the shrunken cross-section + vertical leg;
	// its delay must never be shorter than the horizontal projection
	// would suggest being closer.
	d0, err := flat.ArrivalDelay(90, 0.32, head.Left)
	if err != nil {
		t.Fatal(err)
	}
	d45, err := steep.ArrivalDelay(90, 0.32, head.Left)
	if err != nil {
		t.Fatal(err)
	}
	if d45 <= d0*0.9 {
		t.Errorf("45-degree ring delay %g suspiciously short vs flat %g", d45, d0)
	}
}

func TestRingValidation(t *testing.T) {
	w := testWorld(t, false)
	if _, err := w.Ring(80); err == nil {
		t.Error("extreme elevation should be rejected")
	}
	bad := &World{}
	if _, err := bad.Ring(0); err == nil {
		t.Error("invalid world should be rejected")
	}
}

func TestRingRecordProducesAudio(t *testing.T) {
	w := testWorld(t, false)
	ring, err := w.Ring(-20)
	if err != nil {
		t.Fatal(err)
	}
	probe := dsp.Chirp(200, 16000, 0.03, w.SampleRate)
	rec, err := ring.Record(probe, 100, 0.3, RecordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if dsp.RMS(rec.Left) == 0 || dsp.RMS(rec.Right) == 0 {
		t.Error("silent ring recording")
	}
}
