package acoustic

import (
	"errors"
	"math"

	"repro/internal/dsp"
	"repro/internal/geom"
	"repro/internal/head"
)

// This file implements the acoustic side of the paper's §7 "3D HRTF"
// extension: the user sweeps the phone on several *elevation rings* instead
// of a single horizontal circle. The head is treated as an ellipsoid whose
// horizontal cross-section at height z is the familiar two-half-ellipse
// scaled by s(z) = sqrt(1 - (z/V)^2); diffraction for an elevated source is
// computed on the cross-section at half the source height (where the
// creeping wave travels) and slant-corrected for the out-of-plane leg.
// Pinna responses gain an elevation dependency (pinna.TapsAt3D).

// VerticalSemiAxis is the assumed head semi-height V in metres.
const VerticalSemiAxis = 0.115

// crossSectionScale returns s(z) for the ellipsoid slice at height z.
func crossSectionScale(z float64) float64 {
	r := z / VerticalSemiAxis
	if r > 0.85 {
		r = 0.85
	}
	if r < -0.85 {
		r = -0.85
	}
	return math.Sqrt(1 - r*r)
}

// ElevatedRing is a derived view of a World for one elevation ring.
type ElevatedRing struct {
	world    *World
	model    *head.Model // scaled cross-section
	elevDeg  float64
	elevRad  float64
	ringSina float64 // sin(elevation)
	ringCosa float64
}

// Ring builds the world view for sources on the ring at elevDeg (degrees
// above the horizontal ear plane; positive = up). elevDeg 0 returns a view
// equivalent to the base world.
func (w *World) Ring(elevDeg float64) (*ElevatedRing, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if elevDeg < -60 || elevDeg > 60 {
		return nil, errors.New("acoustic: ring elevation must be within ±60 degrees")
	}
	elev := geom.Radians(elevDeg)
	// The creeping wave from an elevated source rides the head between
	// ear height and the source's height; use the slice at half height
	// of a nominal arm radius.
	const nominalRadius = 0.32
	z := nominalRadius * math.Sin(elev) / 2
	s := crossSectionScale(z)
	p := w.Head.Params()
	scaled := head.Params{A: p.A * s, B: p.B * s, C: p.C * s}
	model, err := head.NewWithResolution(scaled, head.DefaultVertices)
	if err != nil {
		return nil, err
	}
	return &ElevatedRing{
		world:    w,
		model:    model,
		elevDeg:  elevDeg,
		elevRad:  elev,
		ringSina: math.Sin(elev),
		ringCosa: math.Cos(elev),
	}, nil
}

// ElevationDeg returns the ring's elevation.
func (r *ElevatedRing) ElevationDeg() float64 { return r.elevDeg }

// BinauralIR renders the impulse response from a ring source at polar
// angle azimuth (the angle within the ring plane, paper convention) and
// slant radius radius (metres from head center along the ring).
func (r *ElevatedRing) BinauralIR(azimuthDeg, radius float64, length int) (left, right []float64, err error) {
	left = make([]float64, length)
	right = make([]float64, length)
	// Horizontal projection of the ring source.
	hor := geom.FromPolar(geom.Radians(azimuthDeg), radius*r.ringCosa)
	z := radius * r.ringSina
	for _, e := range []head.Ear{head.Left, head.Right} {
		info, err := r.model.PathTo(hor, e)
		if err != nil {
			return nil, nil, err
		}
		// Slant correction: the horizontal path plus the vertical leg.
		dist := math.Hypot(info.Distance, z)
		delay := dist / head.SpeedOfSound
		att := math.Min(1/math.Max(dist, 0.05), 20) * math.Exp(-16*info.ArcLength)
		dst := left
		if e == head.Right {
			dst = right
		}
		base := (delay + leadInSeconds) * r.world.SampleRate
		dsp.AddDelayedImpulse(dst, base, att)
		theta := hor.PolarAngle()
		for _, t := range r.world.Pinna[e].TapsAt3D(theta, r.elevRad) {
			dsp.AddDelayedImpulse(dst, base+t.Delay*r.world.SampleRate, att*t.Gain)
		}
	}
	return left, right, nil
}

// FarFieldIR renders the anechoic far-field HRIR for a plane wave arriving
// from (azimuthDeg, ring elevation).
func (r *ElevatedRing) FarFieldIR(azimuthDeg float64, length int) (left, right []float64, err error) {
	left = make([]float64, length)
	right = make([]float64, length)
	theta := geom.Radians(azimuthDeg)
	for _, e := range []head.Ear{head.Left, head.Right} {
		info := r.model.FarField(azimuthDeg, e)
		// Plane-wave slant: interaural geometry compresses with cos(elev)
		// which the scaled cross-section already approximates; the
		// out-of-plane component adds no interaural asymmetry.
		dst := left
		if e == head.Right {
			dst = right
		}
		base := (info.ExtraDelay*r.ringCosa + leadInSeconds) * r.world.SampleRate
		dsp.AddDelayedImpulse(dst, base, info.Attenuation)
		for _, t := range r.world.Pinna[e].TapsAt3D(theta, r.elevRad) {
			dsp.AddDelayedImpulse(dst, base+t.Delay*r.world.SampleRate, info.Attenuation*t.Gain)
		}
	}
	return left, right, nil
}

// ArrivalDelay returns the true first-arrival delay from a ring source —
// evaluation-side ground truth.
func (r *ElevatedRing) ArrivalDelay(azimuthDeg, radius float64, e head.Ear) (float64, error) {
	hor := geom.FromPolar(geom.Radians(azimuthDeg), radius*r.ringCosa)
	info, err := r.model.PathTo(hor, e)
	if err != nil {
		return 0, err
	}
	z := radius * r.ringSina
	return math.Hypot(info.Distance, z) / head.SpeedOfSound, nil
}

// Record simulates the earbuds capturing src played from the ring position.
func (r *ElevatedRing) Record(src []float64, azimuthDeg, radius float64, opt RecordOptions) (Recording, error) {
	irLen := opt.IRLength
	if irLen <= 0 {
		irLen = int(0.012 * r.world.SampleRate)
	}
	hl, hr, err := r.BinauralIR(azimuthDeg, radius, irLen)
	if err != nil {
		return Recording{}, err
	}
	emitted := src
	if opt.System != nil {
		emitted = opt.System.Apply(src)
	}
	left := dsp.Convolve(emitted, hl)
	right := dsp.Convolve(emitted, hr)
	if opt.Rng != nil && opt.NoiseStd > 0 {
		for i := range left {
			left[i] += opt.Rng.NormFloat64() * opt.NoiseStd
		}
		for i := range right {
			right[i] += opt.Rng.NormFloat64() * opt.NoiseStd
		}
	}
	return Recording{Left: left, Right: right, SampleRate: r.world.SampleRate}, nil
}
