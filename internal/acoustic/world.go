// Package acoustic synthesizes what the earbud microphones physically
// record: head-diffracted and pinna-filtered arrivals of the phone's probe
// signal, room reflections, hardware coloration, and sensor noise. It is
// the stand-in for the paper's physical testbed (phone speaker, SP-TFB-2
// in-ear microphones, ordinary room); the UNIQ pipeline in internal/core
// consumes only the recordings this package produces, never the underlying
// ground truth.
package acoustic

import (
	"errors"
	"math"

	"repro/internal/dsp"
	"repro/internal/geom"
	"repro/internal/head"
	"repro/internal/pinna"
	"repro/internal/room"
)

// World bundles the physical elements of one listener's acoustic scene.
type World struct {
	// Head is the listener's head geometry.
	Head *head.Model
	// Pinna holds the left and right pinna responses.
	Pinna [2]*pinna.Response
	// Room is the surrounding room; a nil-order room is anechoic.
	Room room.Config
	// SampleRate for all rendered impulse responses and signals, Hz.
	SampleRate float64
}

// Validate checks the world configuration.
func (w *World) Validate() error {
	if w.Head == nil {
		return errors.New("acoustic: world needs a head model")
	}
	if w.Pinna[0] == nil || w.Pinna[1] == nil {
		return errors.New("acoustic: world needs two pinna responses")
	}
	if w.SampleRate <= 0 {
		return errors.New("acoustic: sample rate must be positive")
	}
	return nil
}

// LeadInSeconds pads the start of rendered impulse responses so
// band-limited (sinc) tap energy has room before the first arrival. It
// plays the role of the playback chain's output latency: a real deployment
// measures it once via a loopback calibration, so the pipeline treats it as
// a known synchronization offset.
const LeadInSeconds = 1e-3

const leadInSeconds = LeadInSeconds

// LeadInSamples returns the rendering lead-in in samples at the world's
// sample rate. Rendered IRs place an arrival with physical delay d at
// sample (d+leadIn)*rate.
func (w *World) LeadInSamples() float64 { return leadInSeconds * w.SampleRate }

// pinnaIRLen is the rendered pinna-filter length in seconds.
const pinnaIRLen = 6e-4

// BinauralIR renders the true impulse response from a point source at p
// (head coordinates, metres) to both in-ear microphones, including room
// reflections. The length is in samples; both channels share the same time
// origin (sample 0 = source emission minus the lead-in).
func (w *World) BinauralIR(p geom.Vec, length int) (left, right []float64, err error) {
	if err := w.Validate(); err != nil {
		return nil, nil, err
	}
	left = make([]float64, length)
	right = make([]float64, length)
	if err := w.addArrival(left, head.Left, p, 1); err != nil {
		return nil, nil, err
	}
	if err := w.addArrival(right, head.Right, p, 1); err != nil {
		return nil, nil, err
	}
	for _, img := range w.Room.Images(p) {
		// Image sources can mathematically land inside the head if the
		// configuration is degenerate; skip those.
		if err := w.addArrival(left, head.Left, img.Pos, img.Gain); err != nil {
			continue
		}
		_ = w.addArrival(right, head.Right, img.Pos, img.Gain)
	}
	return left, right, nil
}

// nearFieldBreakdown is the source–ear distance (metres) below which the
// point-source model degrades: the phone speaker has physical extent and
// the proximate pinna couples with it, smearing the arrival. This is why
// the paper's gesture check rejects sweeps that drift too close (§4.6).
const nearFieldBreakdown = 0.20

// addArrival accumulates one source arrival (direct or image) into dst.
func (w *World) addArrival(dst []float64, e head.Ear, p geom.Vec, gain float64) error {
	info, err := w.Head.PathTo(p, e)
	if err != nil {
		return err
	}
	theta := p.PolarAngle()
	base := (info.Delay + leadInSeconds) * w.SampleRate
	amp := gain * info.Attenuation
	// The arrival is the pinna filter (unit direct tap + micro-echoes)
	// placed at the path's fractional delay; rendering each tap as a
	// band-limited impulse is exact and cheap.
	if info.Distance < nearFieldBreakdown {
		// Proximity smear: the arrival splits across the speaker's
		// aperture instead of behaving like a single ray.
		smear := (nearFieldBreakdown - info.Distance) * 0.6 / head.SpeedOfSound * w.SampleRate
		dsp.AddDelayedImpulse(dst, base, 0.55*amp)
		dsp.AddDelayedImpulse(dst, base+smear, 0.45*amp)
	} else {
		dsp.AddDelayedImpulse(dst, base, amp)
	}
	for _, t := range w.Pinna[e].TapsAt(theta) {
		dsp.AddDelayedImpulse(dst, base+t.Delay*w.SampleRate, amp*t.Gain)
	}
	return nil
}

// FarFieldIR renders the true anechoic far-field impulse response (the
// ground-truth HRIR) for a plane wave from polar angle thetaDeg. Both
// channels share a time origin at the wavefront crossing the head center
// minus the lead-in.
func (w *World) FarFieldIR(thetaDeg float64, length int) (left, right []float64, err error) {
	if err := w.Validate(); err != nil {
		return nil, nil, err
	}
	left = make([]float64, length)
	right = make([]float64, length)
	theta := geom.Radians(thetaDeg)
	for _, e := range []head.Ear{head.Left, head.Right} {
		info := w.Head.FarField(thetaDeg, e)
		dst := left
		if e == head.Right {
			dst = right
		}
		base := (info.ExtraDelay + leadInSeconds) * w.SampleRate
		dsp.AddDelayedImpulse(dst, base, info.Attenuation)
		for _, t := range w.Pinna[e].TapsAt(theta) {
			dsp.AddDelayedImpulse(dst, base+t.Delay*w.SampleRate, info.Attenuation*t.Gain)
		}
	}
	return left, right, nil
}

// ArrivalDelay returns the absolute first-arrival delay (seconds, excluding
// the lead-in) from p to the given ear — evaluation-only ground truth.
func (w *World) ArrivalDelay(p geom.Vec, e head.Ear) (float64, error) {
	info, err := w.Head.PathTo(p, e)
	if err != nil {
		return 0, err
	}
	return info.Delay, nil
}

// SurfaceTDOA returns the true time difference of arrival between a
// microphone pasted on the head surface at polar angle thetaDeg and the
// right-ear reference microphone, for a source at p, travelling diffracted
// paths (used by the Fig 5 groundwork experiment).
func (w *World) SurfaceTDOA(p geom.Vec, thetaDeg float64) (float64, error) {
	b := w.Head.Boundary()
	testIdx := b.NearestVertex(w.Head.SurfacePoint(thetaDeg))
	tp, err := b.ShortestExteriorPath(p, testIdx)
	if err != nil {
		return 0, err
	}
	rp, err := b.ShortestExteriorPath(p, w.Head.EarIndex(head.Right))
	if err != nil {
		return 0, err
	}
	return (tp.Length - rp.Length) / head.SpeedOfSound, nil
}

// ShadowSNRScale returns a crude SNR multiplier for a recording made at ear
// e from a source at p: deep shadow (long creeping arc) suppresses signal
// energy, which the paper observes as degraded right-ear accuracy near 90°.
func (w *World) ShadowSNRScale(p geom.Vec, e head.Ear) float64 {
	info, err := w.Head.PathTo(p, e)
	if err != nil {
		return 1
	}
	return math.Exp(-8 * info.ArcLength)
}
