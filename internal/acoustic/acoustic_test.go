package acoustic

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dsp"
	"repro/internal/geom"
	"repro/internal/head"
	"repro/internal/pinna"
	"repro/internal/room"
)

func testWorld(t *testing.T, withRoom bool) *World {
	t.Helper()
	hm, err := head.New(head.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	w := &World{
		Head:       hm,
		Pinna:      [2]*pinna.Response{pinna.New(rng), pinna.New(rng)},
		SampleRate: 48000,
	}
	if withRoom {
		w.Room = room.DefaultConfig()
	} else {
		w.Room = room.Config{Width: 4, Depth: 5, Absorption: 0.5, MaxOrder: 0}
	}
	return w
}

func TestValidateWorld(t *testing.T) {
	w := testWorld(t, false)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &World{}
	if err := bad.Validate(); err == nil {
		t.Error("empty world should be invalid")
	}
}

func TestBinauralIRFirstTapMatchesGeometry(t *testing.T) {
	w := testWorld(t, false)
	src := geom.Vec{X: -0.35, Y: 0.05} // left of the head
	irLen := int(0.01 * w.SampleRate)
	hl, hr, err := w.BinauralIR(src, irLen)
	if err != nil {
		t.Fatal(err)
	}
	li, _ := dsp.FirstPeak(hl, 0.35)
	ri, _ := dsp.FirstPeak(hr, 0.35)
	if li < 0 || ri < 0 {
		t.Fatal("missing first taps")
	}
	wantL, _ := w.ArrivalDelay(src, head.Left)
	wantR, _ := w.ArrivalDelay(src, head.Right)
	lead := w.LeadInSamples()
	gotL := (li - lead) / w.SampleRate
	gotR := (ri - lead) / w.SampleRate
	if math.Abs(gotL-wantL) > 3e-5 {
		t.Errorf("left first tap delay %g, want %g", gotL, wantL)
	}
	if math.Abs(gotR-wantR) > 3e-5 {
		t.Errorf("right first tap delay %g, want %g", gotR, wantR)
	}
	if ri <= li {
		t.Error("right (shadowed) tap should arrive later")
	}
}

func TestRoomAddsLateEnergy(t *testing.T) {
	src := geom.Vec{X: -0.35, Y: 0.05}
	irLen := int(0.05 * 48000)
	anech := testWorld(t, false)
	reverb := testWorld(t, true)
	al, _, err := anech.BinauralIR(src, irLen)
	if err != nil {
		t.Fatal(err)
	}
	rl, _, err := reverb.BinauralIR(src, irLen)
	if err != nil {
		t.Fatal(err)
	}
	// Early parts nearly identical; late part of the reverberant IR has
	// extra energy.
	cut := int(0.004 * 48000)
	lateAnech := dsp.Energy(al[cut:])
	lateReverb := dsp.Energy(rl[cut:])
	if lateReverb <= lateAnech*2 {
		t.Errorf("room should add late energy: anechoic %g reverberant %g", lateAnech, lateReverb)
	}
}

func TestFarFieldIRITD(t *testing.T) {
	w := testWorld(t, false)
	irLen := int(0.005 * w.SampleRate)
	hl, hr, err := w.FarFieldIR(90, irLen)
	if err != nil {
		t.Fatal(err)
	}
	li, _ := dsp.FirstPeak(hl, 0.35)
	ri, _ := dsp.FirstPeak(hr, 0.35)
	gotITD := (li - ri) / w.SampleRate
	wantITD := w.Head.FarFieldITD(90)
	if math.Abs(gotITD-wantITD) > 3e-5 {
		t.Errorf("rendered ITD %g, want %g", gotITD, wantITD)
	}
}

func TestRecordContainsProbe(t *testing.T) {
	w := testWorld(t, false)
	probe := dsp.Chirp(200, 20000, 0.05, w.SampleRate)
	rec, err := w.Record(probe, geom.Vec{X: -0.3, Y: 0.1}, RecordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Left) == 0 || len(rec.Right) == 0 {
		t.Fatal("empty recording")
	}
	// Deconvolving the recording with the probe should recover an IR
	// whose first tap matches the geometric delay.
	cir := dsp.Deconvolve(rec.Left, probe, int(0.01*w.SampleRate), 1e-3)
	idx, _ := dsp.FirstPeak(cir, 0.35)
	want, _ := w.ArrivalDelay(geom.Vec{X: -0.3, Y: 0.1}, head.Left)
	got := (idx - w.LeadInSamples()) / w.SampleRate
	if math.Abs(got-want) > 5e-5 {
		t.Errorf("recovered delay %g, want %g", got, want)
	}
}

func TestRecordNoise(t *testing.T) {
	w := testWorld(t, false)
	probe := dsp.Chirp(200, 20000, 0.02, w.SampleRate)
	clean, err := w.Record(probe, geom.Vec{X: -0.3, Y: 0.1}, RecordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := w.Record(probe, geom.Vec{X: -0.3, Y: 0.1},
		RecordOptions{NoiseStd: 0.01, Rng: rand.New(rand.NewSource(5))})
	if err != nil {
		t.Fatal(err)
	}
	diff := 0.0
	for i := range clean.Left {
		diff += math.Abs(noisy.Left[i] - clean.Left[i])
	}
	if diff == 0 {
		t.Error("noise option had no effect")
	}
}

func TestSystemResponseShape(t *testing.T) {
	s := NewSystemResponse(48000, rand.New(rand.NewSource(2)))
	// Unusable at very low frequency, reasonable in mid band (Fig 16).
	if s.MagnitudeAt(20) > 0.3 {
		t.Errorf("20 Hz response %g should be heavily attenuated", s.MagnitudeAt(20))
	}
	mid := s.MagnitudeAt(1000)
	if mid < 0.5 || mid > 1.6 {
		t.Errorf("1 kHz response %g out of plausible range", mid)
	}
	if s.MagnitudeAt(0) != 0 {
		t.Error("DC response should be 0")
	}
	if s.MagnitudeAt(22000) >= mid {
		t.Error("response should roll off toward Nyquist")
	}
}

func TestSystemResponseApplyAttenuatesLow(t *testing.T) {
	s := NewSystemResponse(48000, rand.New(rand.NewSource(3)))
	low := dsp.Tone(30, 0.05, 48000)
	mid := dsp.Tone(1000, 0.05, 48000)
	gl := dsp.RMS(s.Apply(low)) / dsp.RMS(low)
	gm := dsp.RMS(s.Apply(mid)) / dsp.RMS(mid)
	if gl >= gm/2 {
		t.Errorf("30 Hz gain %g should be well below 1 kHz gain %g", gl, gm)
	}
}

func TestFlatSystemResponse(t *testing.T) {
	s := FlatSystemResponse(48000)
	x := dsp.Tone(1000, 0.02, 48000)
	y := s.Apply(x)
	c, _ := dsp.NormXCorrPeak(x, y)
	if c < 0.99 {
		t.Errorf("flat response altered the signal (corr %g)", c)
	}
}

func TestMeasureIRIsCompensable(t *testing.T) {
	// The measured system IR, deconvolved out of a recording, should
	// flatten the response: verify its spectrum correlates with the true
	// magnitude curve.
	s := NewSystemResponse(48000, rand.New(rand.NewSource(4)))
	ir := s.MeasureIR(512)
	spec := dsp.Magnitudes(dsp.FFTReal(dsp.ZeroPad(ir, 4096)))
	// Compare at a few probe frequencies.
	for _, f := range []float64{200, 1000, 5000} {
		bin := int(f / 48000 * 4096)
		want := s.MagnitudeAt(f)
		if math.Abs(spec[bin]-want) > 0.25*want+0.05 {
			t.Errorf("measured IR magnitude at %g Hz = %g, want ~%g", f, spec[bin], want)
		}
	}
}

func TestSurfaceTDOAMatchesDiffraction(t *testing.T) {
	w := testWorld(t, false)
	src := geom.Vec{X: 0.5, Y: 0.1} // speaker on the user's right (Fig 4)
	// Test mic on the left cheek (theta ~ 45 deg): TDoA must be positive
	// (reference right ear hears first) and grow as the mic moves back.
	prev := -1.0
	for _, deg := range []float64{10, 25, 40, 55, 70, 85} {
		dt, err := w.SurfaceTDOA(src, deg)
		if err != nil {
			t.Fatal(err)
		}
		if dt <= prev {
			t.Fatalf("TDoA should grow as the mic moves away: %g then %g at %g deg", prev, dt, deg)
		}
		prev = dt
	}
}

func TestShadowSNRScale(t *testing.T) {
	w := testWorld(t, false)
	left := geom.Vec{X: -0.4, Y: 0}
	lit := w.ShadowSNRScale(left, head.Left)
	shadow := w.ShadowSNRScale(left, head.Right)
	if lit != 1 {
		t.Errorf("lit ear scale %g, want 1", lit)
	}
	if shadow >= lit {
		t.Error("shadowed ear should lose SNR")
	}
}
