package acoustic

import (
	"math"
	"math/rand"

	"repro/internal/dsp"
)

// SystemResponse models the cascaded frequency response of the phone
// speaker and the in-ear microphone. Consumer hardware (paper Fig 16) is
// unstable below ~50 Hz, reasonably flat over 100 Hz–10 kHz with a few dB
// of ripple, and rolls off toward Nyquist. UNIQ compensates for this
// response before HRTF estimation (§4.6).
type SystemResponse struct {
	sampleRate float64
	// ripple holds {freqHz, amplitude, phase} triples for log-spaced
	// cosine ripple terms.
	ripple [][3]float64
	// lowKnee and highKnee are the -3 dB corner frequencies.
	lowKnee, highKnee float64
}

// NewSystemResponse draws a plausible speaker–mic response from rng.
// Different seeds model different hardware units.
func NewSystemResponse(sampleRate float64, rng *rand.Rand) *SystemResponse {
	s := &SystemResponse{
		sampleRate: sampleRate,
		lowKnee:    70 + 30*rng.Float64(),
		highKnee:   9000 + 4000*rng.Float64(),
	}
	// A handful of broad ripple terms in log-frequency.
	for i := 0; i < 5; i++ {
		s.ripple = append(s.ripple, [3]float64{
			1.5 + 1.5*rng.Float64(),     // cycles over the log band
			0.05 + 0.12*rng.Float64(),   // +-0.5 to 1.5 dB-ish
			rng.Float64() * 2 * math.Pi, // phase
		})
	}
	return s
}

// FlatSystemResponse returns an idealized flat response (useful for
// isolating pipeline error sources in tests and ablations).
func FlatSystemResponse(sampleRate float64) *SystemResponse {
	return &SystemResponse{sampleRate: sampleRate, lowKnee: 1, highKnee: sampleRate}
}

// MagnitudeAt returns the linear amplitude response at freq Hz.
func (s *SystemResponse) MagnitudeAt(freq float64) float64 {
	if freq <= 0 {
		return 0
	}
	// Second-order high-pass knee and first-order low-pass knee.
	r := freq / s.lowKnee
	hp := (r * r) / math.Sqrt(1+r*r*r*r)
	q := freq / s.highKnee
	lp := 1 / math.Sqrt(1+q*q)
	g := hp * lp
	lf := math.Log10(freq)
	for _, t := range s.ripple {
		g *= 1 + t[1]*math.Cos(2*math.Pi*t[0]*lf+t[2])
	}
	return g
}

// Apply filters x through the system response (zero-phase magnitude
// filtering via FFT; hardware phase is not modelled because UNIQ's
// compensation divides it out anyway).
func (s *SystemResponse) Apply(x []float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	n := dsp.NextPow2(len(x) * 2)
	spec := dsp.FFTReal(dsp.ZeroPad(x, n))
	freqs := dsp.FFTFreqs(n, s.sampleRate)
	for i := range spec {
		f := math.Abs(freqs[i])
		spec[i] *= complex(s.MagnitudeAt(f), 0)
	}
	out := dsp.IFFTReal(spec)
	return out[:len(x)]
}

// MeasureIR measures the system's impulse response the way a user would:
// play a flat-amplitude chirp with the mic co-located with the speaker and
// deconvolve (§4.6). The result is what the compensation step divides by.
func (s *SystemResponse) MeasureIR(length int) []float64 {
	probe := dsp.Chirp(40, s.sampleRate/2*0.95, 0.5, s.sampleRate)
	rec := s.Apply(probe)
	return dsp.Deconvolve(rec, probe, length, 1e-4)
}
