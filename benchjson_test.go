package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/sim"
)

// BenchRecord is one measured kernel in the bench.json summary.
type BenchRecord struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	// SessionsPerSec is set for whole-pipeline records.
	SessionsPerSec float64 `json:"sessionsPerSec,omitempty"`
}

// BenchSummary is the bench.json schema: a flat record list plus the
// derived headline ratios trajectory tracking plots across PRs.
type BenchSummary struct {
	Schema          string             `json:"schema"`
	GeneratedUnixMS int64              `json:"generatedUnixMs"`
	GoVersion       string             `json:"goVersion"`
	GoMaxProcs      int                `json:"goMaxProcs"`
	Benchmarks      []BenchRecord      `json:"benchmarks"`
	Derived         map[string]float64 `json:"derived"`
}

// TestEmitBenchJSON measures the PR's headline kernels with
// testing.Benchmark and writes a machine-readable summary for BENCH_*.json
// trajectory tracking. It is opt-in — set BENCH_JSON to the output path:
//
//	BENCH_JSON=bench.json go test -run TestEmitBenchJSON .
func TestEmitBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("set BENCH_JSON=<path> to emit the benchmark summary")
	}

	sum := BenchSummary{
		Schema:          "uniq-bench/v1",
		GeneratedUnixMS: time.Now().UnixMilli(),
		GoVersion:       runtime.Version(),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		Derived:         map[string]float64{},
	}
	add := func(name string, r testing.BenchmarkResult) BenchRecord {
		rec := BenchRecord{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		sum.Benchmarks = append(sum.Benchmarks, rec)
		return rec
	}

	// FFT engine: plan API on caller-owned buffers, pow2 and Bluestein,
	// complex and real paths.
	for _, n := range []int{1024, 16384} {
		src := make([]complex128, n)
		buf := make([]complex128, n)
		for i := range src {
			src[i] = complex(float64(i%7)-3, float64(i%5)-2)
		}
		p := dsp.PlanFFT(n)
		add(fmt.Sprintf("fft/planned/pow2-%d", n), testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				copy(buf, src)
				p.Forward(buf)
			}
		}))
	}
	for _, n := range []int{1000, 4410} {
		src := make([]complex128, n)
		buf := make([]complex128, n)
		for i := range src {
			src[i] = complex(float64(i%7)-3, float64(i%5)-2)
		}
		p := dsp.PlanFFT(n)
		add(fmt.Sprintf("fft/planned/bluestein-%d", n), testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				copy(buf, src)
				p.Forward(buf)
			}
		}))
	}
	{
		n := 16384
		src := make([]float64, n)
		dst := make([]complex128, n)
		for i := range src {
			src[i] = float64(i%9) - 4
		}
		p := dsp.PlanFFT(n)
		add(fmt.Sprintf("fft/planned/real-pow2-%d", n), testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.ForwardReal(dst, src)
			}
		}))
	}

	// Whole pipeline at 1 / 4 / NumCPU internal workers (coarse fusion, as
	// in BenchmarkPersonalizeParallel).
	v := sim.NewVolunteer(1, 777)
	sess, err := sim.RunSession(v, sim.SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	in := core.SessionInput{
		Probe: sess.Probe, SampleRate: sess.SampleRate,
		IMU: sess.IMU, SystemIR: sess.SystemIR, SyncOffset: sess.SyncOffset,
	}
	for _, m := range sess.Measurements {
		in.Stops = append(in.Stops, core.StopRecording{Time: m.Time, Left: m.Rec.Left, Right: m.Rec.Right})
	}
	perWorkers := map[int]float64{}
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		if _, done := perWorkers[workers]; done {
			continue
		}
		opt := core.PipelineOptions{
			Workers: workers,
			Fusion: core.FusionOptions{
				GridPoints: 2,
				MaxEvals:   40,
				Loc:        core.LocalizerOptions{AngleStepDeg: 3, RadiusSteps: 8, BoundaryVertices: 120},
			},
			Gesture: core.GestureLimits{MaxResidualDeg: 15},
		}
		if workers == 1 {
			opt.Workers = -1
		}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Personalize(in, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
		rec := add(fmt.Sprintf("personalize/workers=%d", workers), r)
		perSec := 1e9 / rec.NsPerOp
		sum.Benchmarks[len(sum.Benchmarks)-1].SessionsPerSec = perSec
		perWorkers[workers] = rec.NsPerOp
	}
	if base, ok := perWorkers[1]; ok {
		if par, ok := perWorkers[runtime.NumCPU()]; ok && par > 0 {
			sum.Derived["personalizeSpeedupNumCPUvs1"] = base / par
		}
	}

	out, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d records)", path, len(sum.Benchmarks))
}
