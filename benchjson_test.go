package repro

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"math/rand"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/geom"
	"repro/internal/head"
	"repro/internal/hrtf"
	"repro/internal/room"
	"repro/internal/sim"
	"repro/internal/stream"
)

// seedFuseSensorsNsPerOp is BenchmarkFuseSensors on the code before the
// sweep-batch Localizer build, the refine quad pruning and the
// params-keyed cache (commit 77f7551, this machine). It anchors the
// derived fusionSpeedupVsSeed ratio across PRs.
const seedFuseSensorsNsPerOp = 2308303519.0

// fuseBenchObservations builds the deterministic noise-free fusion input
// used by the fuseSensors kernel (mirrors the core package's benchmark).
func fuseBenchObservations() ([]core.FusionObservation, error) {
	m, err := head.New(head.Params{A: 0.105, B: 0.085, C: 0.098})
	if err != nil {
		return nil, err
	}
	var obs []core.FusionObservation
	for deg := 8.0; deg <= 172; deg += 6 {
		r := 0.30 + 0.04*math.Sin(deg/30)
		pos := geom.FromPolar(geom.Radians(deg), r)
		l, err1 := m.PathTo(pos, head.Left)
		rr, err2 := m.PathTo(pos, head.Right)
		if err1 != nil {
			return nil, err1
		}
		if err2 != nil {
			return nil, err2
		}
		obs = append(obs, core.FusionObservation{
			DelayLeft:  l.Delay,
			DelayRight: rr.Delay,
			AlphaRad:   geom.Radians(deg),
		})
	}
	return obs, nil
}

// personalizeBenchSession memoizes the simulated volunteer session shared
// by every personalize/workers=N kernel, so the guard can replay those
// records without re-rendering the session per measurement.
var personalizeBenchSession struct {
	sync.Once
	in  core.SessionInput
	err error
}

func personalizeBenchInput() (core.SessionInput, error) {
	s := &personalizeBenchSession
	s.Do(func() {
		sess, err := sim.RunSession(sim.NewVolunteer(1, 777), sim.SessionConfig{})
		if err != nil {
			s.err = err
			return
		}
		s.in = core.SessionInput{
			Probe: sess.Probe, SampleRate: sess.SampleRate,
			IMU: sess.IMU, SystemIR: sess.SystemIR, SyncOffset: sess.SyncOffset,
		}
		for _, m := range sess.Measurements {
			s.in.Stops = append(s.in.Stops, core.StopRecording{Time: m.Time, Left: m.Rec.Left, Right: m.Rec.Right})
		}
	})
	return s.in, s.err
}

// measureKernel runs the named bench.json kernel with testing.Benchmark.
// It is shared by the emitter and the bench-smoke regression guard so both
// measure exactly the same workload. ok is false for names the function
// does not know.
func measureKernel(name string) (testing.BenchmarkResult, bool) {
	switch {
	case strings.HasPrefix(name, "fft/planned/pow2-"), strings.HasPrefix(name, "fft/planned/bluestein-"):
		var n int
		if _, err := fmt.Sscanf(name[strings.LastIndex(name, "-")+1:], "%d", &n); err != nil || n <= 0 {
			return testing.BenchmarkResult{}, false
		}
		src := make([]complex128, n)
		buf := make([]complex128, n)
		for i := range src {
			src[i] = complex(float64(i%7)-3, float64(i%5)-2)
		}
		p := dsp.PlanFFT(n)
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				copy(buf, src)
				p.Forward(buf)
			}
		}), true
	case name == "fft/planned/real-pow2-16384":
		n := 16384
		src := make([]float64, n)
		dst := make([]complex128, n)
		for i := range src {
			src[i] = float64(i%9) - 4
		}
		p := dsp.PlanFFT(n)
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.ForwardReal(dst, src)
			}
		}), true
	case name == "localizer/build":
		params := head.DefaultParams()
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				loc, err := core.NewLocalizer(params, core.LocalizerOptions{})
				if err != nil {
					b.Fatal(err)
				}
				loc.Release()
			}
		}), true
	case name == "geom/tangent/path-query-240":
		verts := make([]geom.Vec, 240)
		for i := range verts {
			theta := 2 * math.Pi * float64(i) / float64(len(verts))
			verts[i] = geom.Vec{X: 0.09 * math.Cos(theta), Y: 0.07 * math.Sin(theta)}
		}
		bnd, err := geom.NewBoundary(verts)
		if err != nil {
			return testing.BenchmarkResult{}, false
		}
		p := geom.Vec{X: -0.31, Y: 0.22}
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bnd.ShortestExteriorPath(p, 5); err != nil {
					b.Fatal(err)
				}
			}
		}), true
	case name == "stream/convolver":
		// Steady-state streaming render: one hop in, one hop out per op
		// (mirrors the internal/stream BenchmarkConvolver workload).
		tab, err := sim.MeasureGroundTruthFar(sim.NewVolunteer(1, 3), 48000, 10)
		if err != nil {
			return testing.BenchmarkResult{}, false
		}
		c, err := stream.NewConvolver(tab, stream.ConvolverOptions{})
		if err != nil {
			return testing.BenchmarkResult{}, false
		}
		c.SetAngle(60)
		hop := c.BlockSize() / 2
		in := make([]float64, hop)
		for i := range in {
			in[i] = math.Sin(float64(i) * 0.013)
		}
		outL := make([]float64, hop)
		outR := make([]float64, hop)
		for i := 0; i < 8; i++ {
			c.Push(in)
			c.Read(outL, outR)
		}
		return testing.Benchmark(func(b *testing.B) {
			b.SetBytes(int64(hop * 8))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.Push(in)
				c.Read(outL, outR)
			}
		}), true
	case name == "stream/aoa-tracker":
		// One estimation hop: half a window of stereo input in, one eq. 11
		// estimate out (mirrors the internal/stream BenchmarkAoATracker).
		tab, err := sim.MeasureGroundTruthFar(sim.NewVolunteer(1, 3), 48000, 10)
		if err != nil {
			return testing.BenchmarkResult{}, false
		}
		tr, err := stream.NewAoATracker(tab, stream.TrackerOptions{})
		if err != nil {
			return testing.BenchmarkResult{}, false
		}
		h, err := tab.FarAt(40)
		if err != nil {
			return testing.BenchmarkResult{}, false
		}
		src := dsp.WhiteNoise(tr.Window(), rand.New(rand.NewSource(4)))
		l, r := h.Render(src)
		l, r = l[:tr.Window()], r[:tr.Window()]
		tr.Push(l, r) // prime a full window so every push completes a hop
		hop := tr.Hop()
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if ev := tr.Push(l[:hop], r[:hop]); len(ev) == 0 {
					b.Fatal("hop produced no estimate")
				}
			}
		}), true
	case strings.HasPrefix(name, "stream/scene-"):
		// Scene saturation kernels (multi-source render with room
		// acoustics); mirrors the internal/stream BenchmarkScene* workloads.
		return measureSceneKernel(name)
	case name == "fuseSensors", name == "fuseSensors/fast":
		// "fuseSensors" pins the exact dense solve (the pre-cascade
		// committed baseline stays comparable across PRs);
		// "fuseSensors/fast" is the default coarse-to-fine cascade every
		// production solve now takes.
		obs, err := fuseBenchObservations()
		if err != nil {
			return testing.BenchmarkResult{}, false
		}
		opt := core.FusionOptions{Exact: name == "fuseSensors"}
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.FuseSensors(obs, opt); err != nil {
					b.Fatal(err)
				}
			}
		}), true
	case strings.HasPrefix(name, "store/"):
		// Profile-store kernels (see benchstore_test.go): cache-bypassing
		// cold reads, the legacy JSON baseline, durable puts, bulk load.
		return measureStoreKernel(name)
	case strings.HasPrefix(name, "personalize/workers="):
		// Whole pipeline, coarse fusion, N internal workers (mirrors
		// BenchmarkPersonalizeParallel). Parallel records raise GOMAXPROCS
		// to NumCPU for the measurement: go test binaries may start
		// single-threaded, and a workers=N record measured on one scheduler
		// thread would claim parallel cost it never paid.
		var workers int
		if _, err := fmt.Sscanf(name[strings.LastIndex(name, "=")+1:], "%d", &workers); err != nil || workers <= 0 {
			return testing.BenchmarkResult{}, false
		}
		in, err := personalizeBenchInput()
		if err != nil {
			return testing.BenchmarkResult{}, false
		}
		opt := core.PipelineOptions{
			Workers: workers,
			Fusion: core.FusionOptions{
				GridPoints: 2,
				MaxEvals:   40,
				Loc:        core.LocalizerOptions{AngleStepDeg: 3, RadiusSteps: 8, BoundaryVertices: 120},
			},
			Gesture: core.GestureLimits{MaxResidualDeg: 15},
		}
		if workers == 1 {
			opt.Workers = -1 // sequential: the 1-worker record skips pool overhead
		}
		if workers > 1 {
			prev := runtime.GOMAXPROCS(runtime.NumCPU())
			defer runtime.GOMAXPROCS(prev)
		}
		return testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Personalize(in, opt); err != nil {
					b.Fatal(err)
				}
			}
		}), true
	}
	return testing.BenchmarkResult{}, false
}

// sceneBenchTable memoizes the profile shared by the scene kernels (three
// kernels, one simulated measurement).
var sceneBenchTable struct {
	sync.Once
	tab *hrtf.Table
	err error
}

func sceneKernelTable() (*hrtf.Table, error) {
	s := &sceneBenchTable
	s.Do(func() {
		s.tab, s.err = sim.MeasureGroundTruthFar(sim.NewVolunteer(1, 3), 48000, 10)
	})
	return s.tab, s.err
}

// newSceneKernel builds an n-source scene in the default order-2 room,
// primed to steady state (one hop in per source, one mixed hop out per op).
func newSceneKernel(tab *hrtf.Table, n int) (*stream.Scene, []float64, []float64, []float64, error) {
	srcs := make([]stream.SceneSource, n)
	for i := range srcs {
		srcs[i] = stream.SceneSource{BearingDeg: 30 + 300*float64(i)/float64(n)}
	}
	sc, err := stream.NewScene(tab, stream.SceneOptions{
		Room:    room.DefaultConfig(),
		Sources: srcs,
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	hop := sc.BlockSize() / 2
	in := make([]float64, hop)
	for i := range in {
		in[i] = math.Sin(float64(i) * 0.013)
	}
	outL := make([]float64, hop)
	outR := make([]float64, hop)
	for i := 0; i < 8; i++ {
		for s := 0; s < n; s++ {
			sc.PushFrame(s, in)
		}
		sc.ReadFrame(outL, outR)
	}
	return sc, in, outL, outR, nil
}

func measureSceneKernel(name string) (testing.BenchmarkResult, bool) {
	tab, err := sceneKernelTable()
	if err != nil {
		return testing.BenchmarkResult{}, false
	}
	switch name {
	case "stream/scene-4src-order2", "stream/scene-8src-order2":
		// Sources-per-session scaling: one scene hop, 4 or 8 sources, each
		// with a direct path plus 16 order-2 image arrivals.
		n := 4
		if name == "stream/scene-8src-order2" {
			n = 8
		}
		sc, in, outL, outR, err := newSceneKernel(tab, n)
		if err != nil {
			return testing.BenchmarkResult{}, false
		}
		return testing.Benchmark(func(b *testing.B) {
			b.SetBytes(int64(n * len(in) * 8))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for s := 0; s < n; s++ {
					sc.PushFrame(s, in)
				}
				sc.ReadFrame(outL, outR)
			}
		}), true
	case "stream/scene-saturation":
		// Sessions-per-machine capacity: every core drives its own 4-source
		// scene (mirrors BenchmarkSceneSessionsParallel). ns/op is machine
		// wall time per hop across all concurrent scenes.
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				sc, in, outL, outR, err := newSceneKernel(tab, 4)
				if err != nil {
					panic(err)
				}
				for pb.Next() {
					for s := 0; s < 4; s++ {
						sc.PushFrame(s, in)
					}
					sc.ReadFrame(outL, outR)
				}
			})
		}), true
	}
	return testing.BenchmarkResult{}, false
}

// BenchRecord is one measured kernel in the bench.json summary.
type BenchRecord struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	// SessionsPerSec is set for whole-pipeline records.
	SessionsPerSec float64 `json:"sessionsPerSec,omitempty"`
	// DiskBytesPerProfile is set for store records: bytes on disk per
	// stored profile under that layout (space alongside speed).
	DiskBytesPerProfile int64 `json:"diskBytesPerProfile,omitempty"`
}

// BenchSummary is the bench.json schema: a flat record list plus the
// derived headline ratios trajectory tracking plots across PRs.
type BenchSummary struct {
	Schema          string             `json:"schema"`
	GeneratedUnixMS int64              `json:"generatedUnixMs"`
	GoVersion       string             `json:"goVersion"`
	GoMaxProcs      int                `json:"goMaxProcs"`
	Benchmarks      []BenchRecord      `json:"benchmarks"`
	Derived         map[string]float64 `json:"derived"`
}

// TestEmitBenchJSON measures the PR's headline kernels with
// testing.Benchmark and writes a machine-readable summary for BENCH_*.json
// trajectory tracking. It is opt-in — set BENCH_JSON to the output path:
//
//	BENCH_JSON=bench.json go test -run TestEmitBenchJSON .
func TestEmitBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("set BENCH_JSON=<path> to emit the benchmark summary")
	}

	sum := BenchSummary{
		Schema:          "uniq-bench/v1",
		GeneratedUnixMS: time.Now().UnixMilli(),
		GoVersion:       runtime.Version(),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		Derived:         map[string]float64{},
	}
	add := func(name string, r testing.BenchmarkResult) BenchRecord {
		rec := BenchRecord{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		sum.Benchmarks = append(sum.Benchmarks, rec)
		return rec
	}

	// FFT engine (plan API, pow2/Bluestein/real), the geometry fast path,
	// the Localizer delay-field build, and the sensor-fusion solve on both
	// its exact and cascade paths — all measured through the same kernels
	// the bench-smoke regression guard replays.
	ns := map[string]float64{}
	for _, name := range []string{
		"fft/planned/pow2-1024",
		"fft/planned/pow2-16384",
		"fft/planned/bluestein-1000",
		"fft/planned/bluestein-4410",
		"fft/planned/real-pow2-16384",
		"geom/tangent/path-query-240",
		"localizer/build",
		"stream/convolver",
		"stream/aoa-tracker",
		"stream/scene-4src-order2",
		"stream/scene-8src-order2",
		"stream/scene-saturation",
		"fuseSensors",
		"fuseSensors/fast",
	} {
		r, ok := measureKernel(name)
		if !ok {
			t.Fatalf("unknown bench kernel %q", name)
		}
		ns[name] = add(name, r).NsPerOp
	}
	// Scene capacity headlines: one op is one hop of audio, so the
	// real-time budget per op is hop/sampleRate seconds, and budget/ns is
	// how many such scenes (or, scaled by source count, source channels)
	// run in real time — per core for the serial kernels, per machine for
	// the saturation kernel.
	if tab, err := sceneKernelTable(); err == nil {
		if c, err := stream.NewConvolver(tab, stream.ConvolverOptions{}); err == nil {
			hopSec := float64(c.BlockSize()/2) / tab.SampleRate
			if v := ns["stream/scene-4src-order2"]; v > 0 {
				sum.Derived["sceneSessionsPerCoreRealtime"] = hopSec / (v / 1e9)
			}
			if v := ns["stream/scene-8src-order2"]; v > 0 {
				sum.Derived["sceneSourcesPerCoreRealtime"] = 8 * hopSec / (v / 1e9)
			}
			if v := ns["stream/scene-saturation"]; v > 0 {
				sum.Derived["sceneSaturationSessionsPerMachine"] = hopSec / (v / 1e9)
			}
		}
	} else {
		t.Fatalf("scene kernel table: %v", err)
	}

	// Profile store: cache-bypassing cold reads and durable writes on the
	// binary segment store, against the legacy JSON-per-user layout read
	// the way the old store read it. Disk footprint per profile rides on
	// the records; the derived ratios are the PR's headline claims.
	for _, name := range []string{
		"store/coldread", "store/coldread-json", "store/put", "store/bulkload",
	} {
		r, ok := measureKernel(name)
		if !ok {
			t.Fatalf("unknown bench kernel %q", name)
		}
		ns[name] = add(name, r).NsPerOp
	}
	if segB, jsonB, err := storeBenchFootprint(); err == nil {
		for i := range sum.Benchmarks {
			switch sum.Benchmarks[i].Name {
			case "store/coldread", "store/put", "store/bulkload":
				sum.Benchmarks[i].DiskBytesPerProfile = segB
			case "store/coldread-json":
				sum.Benchmarks[i].DiskBytesPerProfile = jsonB
			}
		}
		sum.Derived["storeBytesPerProfile"] = float64(segB)
		sum.Derived["storeCompressionVsJSON"] = float64(jsonB) / float64(segB)
	} else {
		t.Fatalf("store footprint: %v", err)
	}
	if seg, legacy := ns["store/coldread"], ns["store/coldread-json"]; seg > 0 && legacy > 0 {
		sum.Derived["storeColdReadSpeedupVsJSON"] = legacy / seg
	}
	if bulk := ns["store/bulkload"]; bulk > 0 {
		sum.Derived["storeBulkLoadProfilesPerSec"] = float64(storeBenchBulkBatch) / (bulk / 1e9)
	}

	if fast := ns["fuseSensors/fast"]; fast > 0 {
		// Both headline ratios track the default (cascade) solve — the
		// path every production session pays.
		sum.Derived["fusionSpeedupVsSeed"] = seedFuseSensorsNsPerOp / fast
		if exact := ns["fuseSensors"]; exact > 0 {
			sum.Derived["fusionFastSpeedupVsExact"] = exact / fast
		}
	}

	// Whole pipeline at 1 and NumCPU internal workers. The parallel record
	// only exists (and the derived ratio is only emitted) when the machine
	// actually has more than one CPU — a workers=N record at NumCPU=1
	// would just restate the sequential number.
	perWorkers := map[int]float64{}
	for _, workers := range []int{1, runtime.NumCPU()} {
		if _, done := perWorkers[workers]; done {
			continue
		}
		name := fmt.Sprintf("personalize/workers=%d", workers)
		r, ok := measureKernel(name)
		if !ok {
			t.Fatalf("unknown bench kernel %q", name)
		}
		rec := add(name, r)
		sum.Benchmarks[len(sum.Benchmarks)-1].SessionsPerSec = 1e9 / rec.NsPerOp
		perWorkers[workers] = rec.NsPerOp
	}
	if n := runtime.NumCPU(); n > 1 {
		if base, par := perWorkers[1], perWorkers[n]; base > 0 && par > 0 {
			sum.Derived["personalizeSpeedupNumCPUvs1"] = base / par
		}
	}

	out, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d records)", path, len(sum.Benchmarks))
}
