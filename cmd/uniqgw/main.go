// Command uniqgw fronts a fleet of uniqd nodes: every user-keyed route is
// forwarded to the node that owns the user on a consistent-hash ring, so N
// independent uniqd processes behave as one sharded service. The gateway
// health-probes the fleet, ejects nodes after consecutive failures
// (re-admitting them through probation once a probe succeeds), and
// propagates backend backpressure — 503 + Retry-After — to callers instead
// of queueing on their behalf.
//
// Usage:
//
//	uniqgw -node a=http://127.0.0.1:8081 -node b=http://127.0.0.1:8082 \
//	       [-addr :8080] [-vnodes 160] [-probe-interval 2s] [-probe-timeout 1s]
//	       [-eject-after 3] [-read-fallback 1] [-log-level info]
//	       [-log-format text] [-version]
//
// API: same surface as uniqd (sessions, jobs, profiles, AoA, render, both
// streaming routes) plus:
//
//	GET /v1/cluster/nodes   ring membership + per-node breaker/health state
//	GET /debug/metrics      gateway routing metrics (?format=json)
//	GET /healthz            gateway liveness (503 when no backend is available)
//
// Job IDs returned by the gateway are node-qualified ("<jobid>@<node>") so
// polls route back to the node that accepted the job.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/cluster"
	"repro/internal/obs"
)

// nodeFlags collects repeated -node name=url flags.
type nodeFlags []cluster.NodeSpec

func (f *nodeFlags) String() string {
	parts := make([]string, len(*f))
	for i, n := range *f {
		parts[i] = n.Name + "=" + n.BaseURL
	}
	return strings.Join(parts, ",")
}

func (f *nodeFlags) Set(v string) error {
	name, url, ok := strings.Cut(v, "=")
	if !ok || name == "" || url == "" {
		return fmt.Errorf("want name=url, got %q", v)
	}
	*f = append(*f, cluster.NodeSpec{Name: name, BaseURL: url})
	return nil
}

func main() {
	var nodes nodeFlags
	flag.Var(&nodes, "node", "backend uniqd node as name=url (repeat per node)")
	addr := flag.String("addr", ":8080", "listen address")
	vnodes := flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per backend on the hash ring")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "health probe period")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "health probe deadline")
	ejectAfter := flag.Int("eject-after", 3, "consecutive failures before a node is ejected")
	readFallback := flag.Int("read-fallback", 1, "ring successors tried when a profile read's owner fails (-1 disables)")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn or error")
	logFormat := flag.String("log-format", "text", "structured log encoding: text or json")
	version := flag.Bool("version", false, "print the version and exit")
	flag.Parse()

	if *version {
		fmt.Println("uniqgw", buildinfo.Version())
		return
	}
	if len(nodes) == 0 {
		log.Fatal("uniqgw: at least one -node name=url is required")
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatalf("uniqgw: %v", err)
	}
	if *logFormat != "text" && *logFormat != "json" {
		log.Fatalf("uniqgw: unknown -log-format %q (want text or json)", *logFormat)
	}
	logger := obs.NewLogger(os.Stderr, level, *logFormat)

	gw, err := cluster.NewGateway(cluster.GatewayConfig{
		Nodes:         nodes,
		VNodes:        *vnodes,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		EjectAfter:    *ejectAfter,
		ReadFallback:  *readFallback,
		Logger:        logger,
	})
	if err != nil {
		log.Fatalf("uniqgw: %v", err)
	}
	log.Printf("uniqgw %s: fronting %d node(s), %d vnodes each", buildinfo.Version(), len(nodes), *vnodes)

	httpSrv := &http.Server{Addr: *addr, Handler: gw.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("uniqgw: listening on %s", *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		log.Printf("uniqgw: shutting down...")
	case err := <-errc:
		log.Fatalf("uniqgw: %v", err)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("uniqgw: http drain: %v", err)
	}
	gw.Close()
	fmt.Println("uniqgw: bye")
}
