// Command uniqd serves UNIQ HRTF personalization over HTTP: measurement
// sessions go into a bounded job queue drained by a worker pool running the
// full pipeline; completed profiles are persisted in an append-only binary
// segment store (with an in-memory LRU in front) and served to readers
// alongside AoA queries and binaural renders. Directories written by older
// builds (one JSON file per user) are migrated into the segment store on
// startup.
//
// Usage:
//
//	uniqd [-addr :8080] [-dir ./profiles] [-workers N] [-queue N]
//	      [-pipeline-workers N] [-job-timeout 10m] [-cache N] [-pprof]
//	      [-prior] [-prior-refresh N] [-prior-min N]
//	      [-store-segment-bytes N] [-store-compact-ratio R]
//	      [-log-level info] [-log-format text] [-version]
//
// API (see DESIGN.md for the full table):
//
//	POST /v1/sessions                 submit a session  -> 202 {jobId}
//	GET  /v1/jobs/{id}                poll a job
//	GET  /v1/profiles                 list users
//	GET  /v1/profiles/{user}          fetch a stored profile
//	POST /v1/profiles/{user}/aoa      angle-of-arrival query
//	POST /v1/profiles/{user}/render   short binaural render
//	POST /v1/stream/render/{user}     live binaural render (framed full-duplex stream)
//	POST /v1/stream/aoa/{user}        live angle-of-arrival tracking (frames in, NDJSON out)
//	GET  /debug/metrics               Prometheus text metrics (?format=json for flat JSON)
//	GET  /debug/pprof/*               profiling (only with -pprof)
//	GET  /healthz                     liveness
//
// SIGINT/SIGTERM triggers graceful shutdown: the listener stops, in-flight
// HTTP requests and every accepted job drain (bounded by -drain-timeout),
// and completed profiles are on disk before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dir := flag.String("dir", "./profiles", "profile store directory")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrent personalization solves")
	pipelineWorkers := flag.Int("pipeline-workers", 0,
		"per-solve worker pool size (channel-estimation fan-out + fusion grid; 0 = GOMAXPROCS, <0 = sequential)")
	queue := flag.Int("queue", 64, "bounded job queue depth")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job solve deadline")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "shutdown drain deadline")
	cache := flag.Int("cache", 128, "profiles kept in the in-memory LRU")
	storeSegBytes := flag.Int64("store-segment-bytes", 0,
		"roll the profile store to a new segment file past this size (0 = 64 MiB default)")
	storeCompactRatio := flag.Float64("store-compact-ratio", 0,
		"compact a sealed store segment once this fraction of its bytes is dead (0 = 0.5 default)")
	priorEnabled := flag.Bool("prior", true,
		"warm-start fusion solves with a population prior fitted over stored profiles")
	priorRefresh := flag.Int("prior-refresh", 16, "refit the population prior after this many new profiles")
	priorMin := flag.Int("prior-min", 3, "fewest stored profiles before the population prior is used")
	enablePprof := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn or error")
	logFormat := flag.String("log-format", "text", "structured log encoding: text or json")
	version := flag.Bool("version", false, "print the version and exit")
	flag.Parse()

	if *version {
		fmt.Println("uniqd", buildinfo.Version())
		return
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatalf("uniqd: %v", err)
	}
	if *logFormat != "text" && *logFormat != "json" {
		log.Fatalf("uniqd: unknown -log-format %q (want text or json)", *logFormat)
	}
	logger := obs.NewLogger(os.Stderr, level, *logFormat)

	svc, err := service.New(service.Config{
		StoreDir:          *dir,
		CacheSize:         *cache,
		StoreSegmentBytes: *storeSegBytes,
		StoreCompactRatio: *storeCompactRatio,
		Workers:           *workers,
		PipelineWorkers:   *pipelineWorkers,
		QueueDepth:        *queue,
		JobTimeout:        *jobTimeout,
		PriorEnabled:      *priorEnabled,
		PriorRefreshEvery: *priorRefresh,
		PriorMinProfiles:  *priorMin,
		Logger:            logger,
	})
	if err != nil {
		log.Fatalf("uniqd: %v", err)
	}
	users, err := svc.Store().Users()
	if err != nil {
		log.Fatalf("uniqd: %v", err)
	}
	priorState := "disabled"
	if *priorEnabled {
		priorState = "cold"
		if m := svc.PriorModel(); m != nil {
			priorState = fmt.Sprintf("fitted over %d profile(s)", m.Count)
		}
	}
	log.Printf("uniqd %s: store %s holds %d profile(s); %d worker(s), queue %d; prior %s",
		buildinfo.Version(), *dir, len(users), *workers, *queue, priorState)

	handler := svc.Handler()
	if *enablePprof {
		// Mount the pprof handlers explicitly (rather than via the
		// package's DefaultServeMux side effect) in front of the API so
		// the personalization hot paths can be profiled in situ.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		log.Printf("uniqd: pprof enabled at /debug/pprof/")
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("uniqd: listening on %s", *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		log.Printf("uniqd: shutting down, draining jobs (up to %v)...", *drainTimeout)
	case err := <-errc:
		log.Fatalf("uniqd: %v", err)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("uniqd: http drain: %v", err)
	}
	if err := svc.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("uniqd: job drain: %v", err)
	} else if errors.Is(err, context.DeadlineExceeded) {
		log.Printf("uniqd: drain deadline hit; remaining jobs canceled")
	}
	fmt.Println("uniqd: bye")
}
