package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/segstore"
	"repro/internal/service"
)

// runStore dispatches the offline store-maintenance subcommands, which
// operate directly on a profile store directory (no server involved):
//
//	uniqctl store migrate -dir ./profiles          import legacy JSON profiles
//	uniqctl store stat    -dir ./profiles [-json]  segment/byte/recovery report
//	uniqctl store compact -dir ./profiles          rewrite dead segments now
func runStore(args []string) {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "uniqctl store: want a subcommand: migrate, stat or compact")
		os.Exit(2)
	}
	switch args[0] {
	case "migrate":
		runStoreMigrate(args[1:])
	case "stat":
		runStoreStat(args[1:])
	case "compact":
		runStoreCompact(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "uniqctl store: unknown subcommand %q (want migrate, stat or compact)\n", args[0])
		os.Exit(2)
	}
}

// runStoreMigrate opens the store read-write, which imports any legacy
// one-JSON-file-per-user profiles into the segment store, and reports what
// happened. Safe to run repeatedly; a second run is a no-op.
func runStoreMigrate(args []string) {
	fs := flag.NewFlagSet("uniqctl store migrate", flag.ExitOnError)
	dir := fs.String("dir", "./profiles", "profile store directory")
	fs.Parse(args)

	s, err := service.OpenStore(*dir, 1)
	if err != nil {
		fatal(err)
	}
	defer s.Close()
	st := s.SegStats()
	fmt.Printf("store %s: migrated %d legacy JSON profile(s); %d profile(s) in %d segment(s), %d bytes on disk\n",
		*dir, s.Migrated(), st.Profiles, st.Segments, st.DiskBytes)
	for _, issue := range s.MigrationIssues() {
		fmt.Printf("  left unmigrated: %s\n", issue)
	}
	if st.Recovery.Damaged() {
		fmt.Printf("  recovery: %d damaged segment(s), %d byte(s) dropped\n",
			st.Recovery.DamagedSegments, st.Recovery.DroppedBytes)
		for _, d := range st.Recovery.Details {
			fmt.Printf("    %s\n", d)
		}
	}
}

// runStoreStat opens the store read-only and prints the segment layout,
// byte accounting and any recovery findings without modifying anything.
func runStoreStat(args []string) {
	fs := flag.NewFlagSet("uniqctl store stat", flag.ExitOnError)
	dir := fs.String("dir", "./profiles", "profile store directory")
	asJSON := fs.Bool("json", false, "print the stats as JSON")
	fs.Parse(args)

	s, err := service.OpenStoreWith(*dir, 1, segstore.Options{ReadOnly: true})
	if err != nil {
		fatal(err)
	}
	defer s.Close()
	st := s.SegStats()
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("store %s\n", *dir)
	fmt.Printf("  profiles:   %d\n", st.Profiles)
	fmt.Printf("  segments:   %d\n", st.Segments)
	fmt.Printf("  disk bytes: %d\n", st.DiskBytes)
	fmt.Printf("  live bytes: %d\n", st.LiveBytes)
	fmt.Printf("  dead bytes: %d\n", st.DeadBytes)
	if st.Profiles > 0 {
		fmt.Printf("  bytes/profile: %d\n", st.DiskBytes/int64(st.Profiles))
	}
	if st.Recovery.Damaged() {
		fmt.Printf("  recovery: %d damaged segment(s), %d byte(s) unreadable\n",
			st.Recovery.DamagedSegments, st.Recovery.DroppedBytes)
		for _, d := range st.Recovery.Details {
			fmt.Printf("    %s\n", d)
		}
	} else {
		fmt.Printf("  recovery: clean\n")
	}
}

// runStoreCompact opens the store and synchronously rewrites every segment
// past the dead-bytes threshold.
func runStoreCompact(args []string) {
	fs := flag.NewFlagSet("uniqctl store compact", flag.ExitOnError)
	dir := fs.String("dir", "./profiles", "profile store directory")
	fs.Parse(args)

	s, err := service.OpenStore(*dir, 1)
	if err != nil {
		fatal(err)
	}
	defer s.Close()
	before := s.SegStats()
	if err := s.Compact(); err != nil {
		fatal(err)
	}
	after := s.SegStats()
	fmt.Printf("store %s: %d -> %d bytes on disk (%d segment(s) -> %d)\n",
		*dir, before.DiskBytes, after.DiskBytes, before.Segments, after.Segments)
}
