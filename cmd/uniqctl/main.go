// Command uniqctl runs the UNIQ personalization pipeline on a simulated
// measurement session and exports the resulting §4.4 lookup table — or,
// with the submit/get subcommands, drives a running uniqd server instead
// of solving in-process.
//
// Usage:
//
//	uniqctl [-user N] [-seed N] [-quality good|droop|wild] [-out table.json] [-compare]
//	uniqctl submit  -server http://host:8080 [-user N] [-seed N] [-quality good|droop|wild] [-name ID]
//	uniqctl get     -server http://host:8080 -name ID [-out profile.json]
//	uniqctl stream  -server http://host:8080 -name ID -in in.wav [-out out.wav]
//	                [-source deg] [-scene scene.json] [-yaw-rate deg/s] [-frame ms] [-aoa]
//	uniqctl metrics -server http://host:8080 [-json] [-grep substr]
//	uniqctl nodes   -server http://host:8080 [-json]
//	uniqctl store   migrate|stat|compact -dir ./profiles [-json]
//	uniqctl -version
//
// -compare additionally measures the user's ground-truth HRTF and the
// global template and reports the personalization gain.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/buildinfo"
	"repro/uniq"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "submit":
			runSubmit(os.Args[2:])
			return
		case "get":
			runGet(os.Args[2:])
			return
		case "stream":
			runStream(os.Args[2:])
			return
		case "metrics":
			runMetrics(os.Args[2:])
			return
		case "nodes":
			runNodes(os.Args[2:])
			return
		case "store":
			runStore(os.Args[2:])
			return
		}
	}
	user := flag.Int("user", 1, "virtual user id")
	seed := flag.Int64("seed", 2024, "virtual user seed")
	quality := flag.String("quality", "good", "gesture quality: good, droop, wild")
	out := flag.String("out", "", "write the lookup table JSON to this file")
	compare := flag.Bool("compare", false, "compare against ground truth and the global template")
	force := flag.Bool("force", false, "skip the gesture quality check")
	renderDeg := flag.Float64("render", -1, "also render a demo sound from this angle (degrees)")
	wavOut := flag.String("wav", "uniq-demo.wav", "output file for -render")
	spherical := flag.Bool("spherical", false, "measure on three elevation rings (3D extension)")
	version := flag.Bool("version", false, "print the version and exit")
	flag.Parse()

	if *version {
		fmt.Println("uniqctl", buildinfo.Version())
		return
	}

	q, ok := parseQuality(*quality)
	if !ok {
		fmt.Fprintf(os.Stderr, "uniqctl: unknown quality %q\n", *quality)
		os.Exit(2)
	}

	u := uniq.VirtualUser{ID: *user, Seed: *seed}
	if *spherical {
		runSpherical(u, q, *out)
		return
	}
	fmt.Printf("simulating measurement sweep for user %d (seed %d, gesture %s)...\n", *user, *seed, q)
	in, err := uniq.SimulateSession(u, q)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("session: %d stops, %.0f Hz audio, %d IMU samples\n",
		len(in.Stops), in.SampleRate, len(in.IMU))

	prof, err := uniq.Personalize(in, uniq.Options{SkipGestureCheck: *force})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("personalized: head %v, fusion residual %.1f°, %s\n",
		prof.HeadParams, prof.MeanResidualDeg, prof.QualityReport)
	fmt.Printf("lookup table: %d angles x (near+far) HRIR pairs\n", prof.Table.NumAngles())

	if *compare {
		gnd, err := uniq.GroundTruthProfile(u, in.SampleRate, 1)
		if err != nil {
			fatal(err)
		}
		glob, err := uniq.GlobalProfile(in.SampleRate, 1)
		if err != nil {
			fatal(err)
		}
		sPers := uniq.Similarity(gnd, prof)
		sGlob := uniq.Similarity(gnd, glob)
		fmt.Printf("similarity to ground truth: personalized %.3f vs global %.3f (%.2fx gain)\n",
			sPers, sGlob, sPers/sGlob)
	}

	if *renderDeg >= 0 {
		mono := uniq.Chirp(300, 4000, 1.0, in.SampleRate)
		left, right, err := prof.Render(mono, *renderDeg, true)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*wavOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := prof.WriteWAV(f, left, right); err != nil {
			fatal(err)
		}
		fmt.Printf("rendered a 1 s sweep from %.0f° into %s\n", *renderDeg, *wavOut)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := prof.Save(f); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// runSpherical handles the -spherical mode: three elevation rings.
func runSpherical(u uniq.VirtualUser, q uniq.GestureQuality, out string) {
	fmt.Printf("simulating spherical sweep for user %d (rings -25/0/+25)...\n", u.ID)
	rings, err := uniq.SimulateSphericalSession(u, q, []float64{-25, 0, 25})
	if err != nil {
		fatal(err)
	}
	p3, err := uniq.PersonalizeSpherical(rings, uniq.Options{})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("3D profile ready: rings at %v degrees\n", p3.Elevations())
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := p3.Save(f); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", out)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "uniqctl: %v\n", err)
	os.Exit(1)
}
