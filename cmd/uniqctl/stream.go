package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/service"
	"repro/internal/wav"
)

// runStream drives a WAV file through a live streaming session on a uniqd
// server. The default mode renders: mono audio (stereo inputs are mixed
// down) goes up in real-sized frames with optional head-yaw motion, and
// the personalized binaural result comes back frame by frame into -out.
// With -scene a JSON scene file places multiple sources (each with its
// own WAV) in a room and the server mixes them with early reflections.
// With -aoa the input must be a stereo earbud recording; the server's
// angle estimates are printed as they arrive.
func runStream(args []string) {
	fs := flag.NewFlagSet("uniqctl stream", flag.ExitOnError)
	server := fs.String("server", "http://127.0.0.1:8080", "uniqd base URL")
	name := fs.String("name", "", "profile owner id on the server (required)")
	in := fs.String("in", "", "input WAV file (required unless every -scene source names one)")
	out := fs.String("out", "uniq-stream.wav", "output WAV file (render modes)")
	source := fs.Float64("source", 90, "world-frame source bearing, degrees")
	scene := fs.String("scene", "", "scene JSON file: multi-source render with room acoustics")
	yawRate := fs.Float64("yaw-rate", 0, "head yaw rate, degrees/second (render modes)")
	frameMS := fs.Float64("frame", 20, "frame size, milliseconds")
	aoa := fs.Bool("aoa", false, "run angle-of-arrival tracking instead of rendering")
	timeout := fs.Duration("timeout", 5*time.Minute, "give up after this long")
	fs.Parse(args)
	if *name == "" {
		fmt.Fprintln(os.Stderr, "uniqctl stream: -name is required")
		os.Exit(2)
	}
	if *aoa && *scene != "" {
		fmt.Fprintln(os.Stderr, "uniqctl stream: -aoa and -scene are mutually exclusive")
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := service.NewClient(*server)
	if *scene != "" {
		streamScene(ctx, c, *name, *scene, *in, *frameMS, *yawRate, *out)
		return
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "uniqctl stream: -in is required")
		os.Exit(2)
	}
	chans, sr, err := decodeWAVFile(*in)
	if err != nil {
		fatal(err)
	}
	frame := frameSamples(*frameMS, sr)
	if *aoa {
		streamAoA(ctx, c, *name, chans, sr, frame)
		return
	}
	streamRender(ctx, c, *name, chans, sr, frame, *source, *yawRate, *out)
}

// decodeWAVFile reads all channels of a WAV file.
func decodeWAVFile(path string) ([][]float64, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return wav.Decode(f)
}

// downmix folds a decoded WAV to mono (stereo inputs are averaged).
func downmix(chans [][]float64) []float64 {
	if len(chans) == 1 {
		return chans[0]
	}
	mono := make([]float64, len(chans[0]))
	for i := range mono {
		mono[i] = (chans[0][i] + chans[1][i]) / 2
	}
	return mono
}

func frameSamples(frameMS float64, sr int) int {
	frame := int(frameMS / 1000 * float64(sr))
	if frame < 1 {
		frame = 1
	}
	return frame
}

// sceneFile is the on-disk scene description: the wire SceneDesc plus a
// per-source "wav" input path. Sources without one fall back to -in.
type sceneFile struct {
	Room    *service.SceneRoom `json:"room,omitempty"`
	Sources []sceneFileSource  `json:"sources"`
}

type sceneFileSource struct {
	service.SceneSourceDesc
	WAV string `json:"wav,omitempty"`
}

// streamScene renders a multi-source scene: per-source WAVs go up
// interleaved round-robin (each source ends independently), the mixed
// binaural result comes back into out.
func streamScene(ctx context.Context, c *service.Client, name, scenePath, fallbackIn string,
	frameMS, yawRate float64, out string) {
	data, err := os.ReadFile(scenePath)
	if err != nil {
		fatal(err)
	}
	var sf sceneFile
	if err := json.Unmarshal(data, &sf); err != nil {
		fatal(fmt.Errorf("parse %s: %w", scenePath, err))
	}
	if len(sf.Sources) == 0 {
		fmt.Fprintf(os.Stderr, "uniqctl stream: %s describes no sources\n", scenePath)
		os.Exit(2)
	}
	desc := service.SceneDesc{Room: sf.Room}
	feeds := make([][]float64, len(sf.Sources))
	sr := 0
	for i, src := range sf.Sources {
		desc.Sources = append(desc.Sources, src.SceneSourceDesc)
		path := src.WAV
		if path == "" {
			path = fallbackIn
		}
		if path == "" {
			fmt.Fprintf(os.Stderr, "uniqctl stream: source %d has no \"wav\" and -in was not given\n", i)
			os.Exit(2)
		}
		chans, fileSR, err := decodeWAVFile(path)
		if err != nil {
			fatal(err)
		}
		if sr == 0 {
			sr = fileSR
		} else if fileSR != sr {
			fatal(fmt.Errorf("source %d (%s) is %d Hz, earlier sources are %d Hz", i, path, fileSR, sr))
		}
		feeds[i] = downmix(chans)
	}
	frame := frameSamples(frameMS, sr)

	st, err := c.StreamRenderScene(ctx, name, desc)
	if err != nil {
		fatal(err)
	}
	defer st.Close()
	longest := 0
	for _, f := range feeds {
		longest = max(longest, len(f))
	}
	fmt.Printf("streaming %d sources (longest %.1f s at %d Hz)", len(feeds),
		float64(longest)/float64(sr), sr)
	if sf.Room != nil {
		fmt.Printf(" in a %.1fx%.1f m room (order %d)", sf.Room.Width, sf.Room.Depth, sf.Room.MaxOrder)
	}
	if yawRate != 0 {
		fmt.Printf(", head turning at %.0f°/s", yawRate)
	}
	fmt.Println("...")

	var left, right []float64
	recvDone := make(chan error, 1)
	go func() {
		for {
			l, r, err := st.Recv()
			if err == io.EOF {
				recvDone <- nil
				return
			}
			if err != nil {
				recvDone <- err
				return
			}
			left = append(left, l...)
			right = append(right, r...)
		}
	}()
	frames := 0
	offs := make([]int, len(feeds))
	ended := make([]bool, len(feeds))
	for live := len(feeds); live > 0; {
		if yawRate != 0 {
			if err := st.SendPose(yawRate * float64(frames) * float64(frame) / float64(sr)); err != nil {
				fatal(err)
			}
		}
		for i, feed := range feeds {
			if ended[i] {
				continue
			}
			if offs[i] >= len(feed) {
				if err := st.EndSource(i); err != nil {
					fatal(err)
				}
				ended[i] = true
				live--
				continue
			}
			end := min(offs[i]+frame, len(feed))
			if err := st.SendSourceAudio(i, feed[offs[i]:end]); err != nil {
				fatal(err)
			}
			offs[i] = end
		}
		frames++
	}
	if err := st.CloseSend(); err != nil {
		fatal(err)
	}
	if err := <-recvDone; err != nil {
		fatal(err)
	}
	of, err := os.Create(out)
	if err != nil {
		fatal(err)
	}
	defer of.Close()
	if err := wav.EncodeStereo(of, left, right, sr); err != nil {
		fatal(err)
	}
	fmt.Printf("sent %d frame rounds, received %d binaural samples; wrote %s\n",
		frames, len(left), out)
}

func streamRender(ctx context.Context, c *service.Client, name string,
	chans [][]float64, sr, frame int, source, yawRate float64, out string) {
	mono := downmix(chans)
	st, err := c.StreamRender(ctx, name, source)
	if err != nil {
		fatal(err)
	}
	defer st.Close()
	fmt.Printf("streaming %d samples (%.1f s at %d Hz) from %.0f°",
		len(mono), float64(len(mono))/float64(sr), sr, source)
	if yawRate != 0 {
		fmt.Printf(", head turning at %.0f°/s", yawRate)
	}
	fmt.Println("...")

	// Receive concurrently with sending: the server emits output as soon
	// as each block is ready, and the two directions backpressure each
	// other through TCP.
	var left, right []float64
	recvDone := make(chan error, 1)
	go func() {
		for {
			l, r, err := st.Recv()
			if err == io.EOF {
				recvDone <- nil
				return
			}
			if err != nil {
				recvDone <- err
				return
			}
			left = append(left, l...)
			right = append(right, r...)
		}
	}()
	frames := 0
	for off := 0; off < len(mono); off += frame {
		if yawRate != 0 {
			if err := st.SendPose(yawRate * float64(off) / float64(sr)); err != nil {
				fatal(err)
			}
		}
		end := min(off+frame, len(mono))
		if err := st.SendAudio(mono[off:end]); err != nil {
			fatal(err)
		}
		frames++
	}
	if err := st.CloseSend(); err != nil {
		fatal(err)
	}
	if err := <-recvDone; err != nil {
		fatal(err)
	}
	of, err := os.Create(out)
	if err != nil {
		fatal(err)
	}
	defer of.Close()
	if err := wav.EncodeStereo(of, left, right, sr); err != nil {
		fatal(err)
	}
	fmt.Printf("sent %d frames, received %d binaural samples; wrote %s\n",
		frames, len(left), out)
}

func streamAoA(ctx context.Context, c *service.Client, name string,
	chans [][]float64, sr, frame int) {
	if len(chans) < 2 {
		fmt.Fprintln(os.Stderr, "uniqctl stream: -aoa needs a stereo input WAV")
		os.Exit(2)
	}
	l, r := chans[0], chans[1]
	st, err := c.StreamAoA(ctx, name, service.AoAStreamOptions{})
	if err != nil {
		fatal(err)
	}
	defer st.Close()
	fmt.Printf("tracking %d stereo samples (%.1f s at %d Hz)...\n",
		len(l), float64(len(l))/float64(sr), sr)
	// Print events as they arrive, concurrently with sending.
	events := 0
	recvDone := make(chan error, 1)
	go func() {
		for {
			ev, err := st.Recv()
			if err == io.EOF {
				recvDone <- nil
				return
			}
			if err != nil {
				recvDone <- err
				return
			}
			events++
			fmt.Printf("t=%6.3fs  angle %6.1f°  (raw %6.1f°, score %.4f)\n",
				ev.TimeSec, ev.AngleDeg, ev.RawDeg, ev.Score)
		}
	}()
	for off := 0; off < len(l); off += frame {
		end := min(off+frame, len(l))
		if err := st.SendStereo(l[off:end], r[off:end]); err != nil {
			fatal(err)
		}
	}
	if err := st.CloseSend(); err != nil {
		fatal(err)
	}
	if err := <-recvDone; err != nil {
		fatal(err)
	}
	if events == 0 {
		fmt.Println("no angle events (input shorter than one analysis window?)")
	}
}
