package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/service"
	"repro/internal/wav"
)

// runStream drives a WAV file through a live streaming session on a uniqd
// server. The default mode renders: mono audio (stereo inputs are mixed
// down) goes up in real-sized frames with optional head-yaw motion, and
// the personalized binaural result comes back frame by frame into -out.
// With -aoa the input must be a stereo earbud recording; the server's
// angle estimates are printed as they arrive.
func runStream(args []string) {
	fs := flag.NewFlagSet("uniqctl stream", flag.ExitOnError)
	server := fs.String("server", "http://127.0.0.1:8080", "uniqd base URL")
	name := fs.String("name", "", "profile owner id on the server (required)")
	in := fs.String("in", "", "input WAV file (required)")
	out := fs.String("out", "uniq-stream.wav", "output WAV file (render mode)")
	source := fs.Float64("source", 90, "world-frame source bearing, degrees")
	yawRate := fs.Float64("yaw-rate", 0, "head yaw rate, degrees/second (render mode)")
	frameMS := fs.Float64("frame", 20, "frame size, milliseconds")
	aoa := fs.Bool("aoa", false, "run angle-of-arrival tracking instead of rendering")
	timeout := fs.Duration("timeout", 5*time.Minute, "give up after this long")
	fs.Parse(args)
	if *name == "" || *in == "" {
		fmt.Fprintln(os.Stderr, "uniqctl stream: -name and -in are required")
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	chans, sr, err := wav.Decode(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	frame := int(*frameMS / 1000 * float64(sr))
	if frame < 1 {
		frame = 1
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := service.NewClient(*server)
	if *aoa {
		streamAoA(ctx, c, *name, chans, sr, frame)
		return
	}
	streamRender(ctx, c, *name, chans, sr, frame, *source, *yawRate, *out)
}

func streamRender(ctx context.Context, c *service.Client, name string,
	chans [][]float64, sr, frame int, source, yawRate float64, out string) {
	mono := chans[0]
	if len(chans) > 1 {
		mono = make([]float64, len(chans[0]))
		for i := range mono {
			mono[i] = (chans[0][i] + chans[1][i]) / 2
		}
	}
	st, err := c.StreamRender(ctx, name, source)
	if err != nil {
		fatal(err)
	}
	defer st.Close()
	fmt.Printf("streaming %d samples (%.1f s at %d Hz) from %.0f°",
		len(mono), float64(len(mono))/float64(sr), sr, source)
	if yawRate != 0 {
		fmt.Printf(", head turning at %.0f°/s", yawRate)
	}
	fmt.Println("...")

	// Receive concurrently with sending: the server emits output as soon
	// as each block is ready, and the two directions backpressure each
	// other through TCP.
	var left, right []float64
	recvDone := make(chan error, 1)
	go func() {
		for {
			l, r, err := st.Recv()
			if err == io.EOF {
				recvDone <- nil
				return
			}
			if err != nil {
				recvDone <- err
				return
			}
			left = append(left, l...)
			right = append(right, r...)
		}
	}()
	frames := 0
	for off := 0; off < len(mono); off += frame {
		if yawRate != 0 {
			if err := st.SendPose(yawRate * float64(off) / float64(sr)); err != nil {
				fatal(err)
			}
		}
		end := min(off+frame, len(mono))
		if err := st.SendAudio(mono[off:end]); err != nil {
			fatal(err)
		}
		frames++
	}
	if err := st.CloseSend(); err != nil {
		fatal(err)
	}
	if err := <-recvDone; err != nil {
		fatal(err)
	}
	of, err := os.Create(out)
	if err != nil {
		fatal(err)
	}
	defer of.Close()
	if err := wav.EncodeStereo(of, left, right, sr); err != nil {
		fatal(err)
	}
	fmt.Printf("sent %d frames, received %d binaural samples; wrote %s\n",
		frames, len(left), out)
}

func streamAoA(ctx context.Context, c *service.Client, name string,
	chans [][]float64, sr, frame int) {
	if len(chans) < 2 {
		fmt.Fprintln(os.Stderr, "uniqctl stream: -aoa needs a stereo input WAV")
		os.Exit(2)
	}
	l, r := chans[0], chans[1]
	st, err := c.StreamAoA(ctx, name, service.AoAStreamOptions{})
	if err != nil {
		fatal(err)
	}
	defer st.Close()
	fmt.Printf("tracking %d stereo samples (%.1f s at %d Hz)...\n",
		len(l), float64(len(l))/float64(sr), sr)
	// Print events as they arrive, concurrently with sending.
	events := 0
	recvDone := make(chan error, 1)
	go func() {
		for {
			ev, err := st.Recv()
			if err == io.EOF {
				recvDone <- nil
				return
			}
			if err != nil {
				recvDone <- err
				return
			}
			events++
			fmt.Printf("t=%6.3fs  angle %6.1f°  (raw %6.1f°, score %.4f)\n",
				ev.TimeSec, ev.AngleDeg, ev.RawDeg, ev.Score)
		}
	}()
	for off := 0; off < len(l); off += frame {
		end := min(off+frame, len(l))
		if err := st.SendStereo(l[off:end], r[off:end]); err != nil {
			fatal(err)
		}
	}
	if err := st.CloseSend(); err != nil {
		fatal(err)
	}
	if err := <-recvDone; err != nil {
		fatal(err)
	}
	if events == 0 {
		fmt.Println("no angle events (input shorter than one analysis window?)")
	}
}
