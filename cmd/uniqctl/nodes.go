package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/cluster"
)

// runNodes fetches a uniqgw gateway's cluster view and prints the fleet:
// ring membership plus each node's breaker state and last probed health.
func runNodes(args []string) {
	fs := flag.NewFlagSet("uniqctl nodes", flag.ExitOnError)
	server := fs.String("server", "http://127.0.0.1:8080", "uniqgw base URL")
	asJSON := fs.Bool("json", false, "print the raw cluster view as JSON")
	timeout := fs.Duration("timeout", 10*time.Second, "give up after this long")
	fs.Parse(args)

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	view, err := cluster.FetchNodes(ctx, *server)
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(view); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("ring: %d node(s), %d vnodes each\n", len(view.Ring.Nodes), view.Ring.VNodesPerNode)
	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "NODE\tSTATE\tURL\tQUEUE\tWORKERS\tSTREAMS\tVERSION\tLAST PROBE\tLAST ERROR")
	for _, n := range view.Nodes {
		probe := "never"
		if n.LastProbeUnixMS > 0 {
			probe = time.Since(time.UnixMilli(n.LastProbeUnixMS)).Round(time.Millisecond).String() + " ago"
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%d/%d\t%d/%d\t%d\t%s\t%s\t%s\n",
			n.Name, n.State, n.BaseURL,
			n.Health.QueueDepth, n.Health.QueueCapacity,
			n.Health.WorkersBusy, n.Health.WorkersTotal,
			n.Health.ActiveStreamSessions,
			n.Health.Version, probe, n.LastErr)
	}
	w.Flush()
}
