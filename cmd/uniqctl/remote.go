package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/service"
	"repro/uniq"
)

// runSubmit simulates a volunteer's measurement sweep and submits it to a
// uniqd server, polling the job to completion.
func runSubmit(args []string) {
	fs := flag.NewFlagSet("uniqctl submit", flag.ExitOnError)
	server := fs.String("server", "http://127.0.0.1:8080", "uniqd base URL")
	user := fs.Int("user", 1, "virtual user id")
	seed := fs.Int64("seed", 2024, "virtual user seed")
	quality := fs.String("quality", "good", "gesture quality: good, droop, wild")
	name := fs.String("name", "", "profile owner id on the server (default vol<user>)")
	timeout := fs.Duration("timeout", 15*time.Minute, "give up after this long")
	fs.Parse(args)

	q, ok := parseQuality(*quality)
	if !ok {
		fmt.Fprintf(os.Stderr, "uniqctl: unknown quality %q\n", *quality)
		os.Exit(2)
	}
	owner := *name
	if owner == "" {
		owner = fmt.Sprintf("vol%d", *user)
	}

	fmt.Printf("simulating measurement sweep for user %d (seed %d, gesture %s)...\n", *user, *seed, q)
	in, err := uniq.SimulateSession(uniq.VirtualUser{ID: *user, Seed: *seed}, q)
	if err != nil {
		fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := service.NewClient(*server)
	jobID, err := c.Submit(ctx, owner, in)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("submitted: job %s for profile %q; polling...\n", jobID, owner)
	st, err := c.WaitDone(ctx, jobID, time.Second)
	if err != nil {
		fatal(err)
	}
	took := time.Duration(st.FinishedUnixMS-st.SubmittedUnixMS) * time.Millisecond
	fmt.Printf("done in %v\n", took)

	prof, err := c.Profile(ctx, owner)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("profile %q: head %+v, residual %.1f°, table %d angles\n",
		prof.User, prof.HeadParams, prof.MeanResidualDeg, prof.Table.NumAngles())
}

// runGet fetches a stored profile from a uniqd server.
func runGet(args []string) {
	fs := flag.NewFlagSet("uniqctl get", flag.ExitOnError)
	server := fs.String("server", "http://127.0.0.1:8080", "uniqd base URL")
	name := fs.String("name", "", "profile owner id on the server (required)")
	out := fs.String("out", "", "write the full profile JSON to this file")
	fs.Parse(args)
	if *name == "" {
		fmt.Fprintln(os.Stderr, "uniqctl get: -name is required")
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	prof, err := service.NewClient(*server).Profile(ctx, *name)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("profile %q (job %s): head %+v, residual %.1f°, table %d angles, gesture ok=%v\n",
		prof.User, prof.JobID, prof.HeadParams, prof.MeanResidualDeg,
		prof.Table.NumAngles(), prof.GestureOK)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		if err := enc.Encode(prof); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// runMetrics scrapes a uniqd server's /debug/metrics page: the Prometheus
// text form by default, or the flattened name -> value JSON with -json.
func runMetrics(args []string) {
	fs := flag.NewFlagSet("uniqctl metrics", flag.ExitOnError)
	server := fs.String("server", "http://127.0.0.1:8080", "uniqd base URL")
	asJSON := fs.Bool("json", false, "print the flattened JSON form instead of the text exposition")
	grep := fs.String("grep", "", "only print series whose name contains this substring")
	fs.Parse(args)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	c := service.NewClient(*server)
	if *asJSON {
		m, err := c.MetricsJSON(ctx)
		if err != nil {
			fatal(err)
		}
		if *grep != "" {
			for k := range m {
				if !strings.Contains(k, *grep) {
					delete(m, k)
				}
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(m); err != nil {
			fatal(err)
		}
		return
	}
	page, err := c.Metrics(ctx)
	if err != nil {
		fatal(err)
	}
	if *grep != "" {
		for _, line := range strings.Split(page, "\n") {
			if strings.Contains(line, *grep) {
				fmt.Println(line)
			}
		}
		return
	}
	fmt.Print(page)
}

// parseQuality maps the CLI quality names to gesture qualities.
func parseQuality(s string) (uniq.GestureQuality, bool) {
	switch s {
	case "good":
		return uniq.GestureGood, true
	case "droop":
		return uniq.GestureArmDroop, true
	case "wild":
		return uniq.GestureWild, true
	}
	return uniq.GestureGood, false
}
