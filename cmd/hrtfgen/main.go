// Command hrtfgen generates reference HRTF datasets: per-volunteer
// ground-truth far-field tables (the simulated anechoic chamber) and the
// global population template.
//
// Usage:
//
//	hrtfgen [-volunteers N] [-seed N] [-step deg] [-dir out/]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/hrtf"
	"repro/internal/sim"
)

func main() {
	volunteers := flag.Int("volunteers", 5, "number of virtual volunteers")
	seed := flag.Int64("seed", 20210823, "cohort seed")
	step := flag.Float64("step", 1, "angular resolution in degrees")
	dir := flag.String("dir", "hrtf-data", "output directory")
	rate := flag.Float64("rate", 48000, "sample rate in Hz")
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	write := func(name string, t *hrtf.Table) {
		path := filepath.Join(*dir, name)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := t.Encode(f); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d angles)\n", path, t.NumAngles())
	}

	glob, err := sim.GlobalTemplateFar(*rate, *step)
	if err != nil {
		fatal(err)
	}
	write("global.json", glob)

	for _, v := range sim.Cohort(*volunteers, *seed) {
		gnd, err := sim.MeasureGroundTruthFar(v, *rate, *step)
		if err != nil {
			fatal(err)
		}
		write(fmt.Sprintf("volunteer%02d-groundtruth.json", v.ID), gnd)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "hrtfgen: %v\n", err)
	os.Exit(1)
}
