// Command experiments regenerates the paper's tables and figures on the
// simulated testbed.
//
// Usage:
//
//	experiments [-fig all|fig2a|fig2b|fig5|fig9|fig16|fig17|fig18|fig19|fig20|fig21|fig22|ablation]
//	            [-volunteers N] [-trials N] [-seed N] [-fast]
//
// Each figure prints the same rows/series the paper reports, plus the
// paper's reference numbers for comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure id to regenerate, or 'all'")
	volunteers := flag.Int("volunteers", 5, "cohort size")
	trials := flag.Int("trials", 12, "AoA trials per volunteer")
	seed := flag.Int64("seed", 0, "evaluation seed (0 = default)")
	fast := flag.Bool("fast", false, "smaller cohort and trial counts")
	markdown := flag.String("markdown", "", "also write a Markdown report to this file (only with -fig all)")
	flag.Parse()

	study := experiments.NewStudy(experiments.Config{
		Volunteers:            *volunteers,
		AoATrialsPerVolunteer: *trials,
		Seed:                  *seed,
		Fast:                  *fast,
	})

	if *fig == "all" {
		results, err := experiments.RunAll(study, os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if *markdown != "" {
			f, err := os.Create(*markdown)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			if err := experiments.WriteMarkdown(f, results, time.Now()); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *markdown)
		}
		return
	}
	for _, id := range strings.Split(*fig, ",") {
		res, err := experiments.Run(strings.TrimSpace(id), study)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(res.Text)
	}
}
