package repro

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// guardRegressionThreshold fails the guard when a kernel runs this much
// slower than the committed bench.json record (1.20 = +20% ns/op). Wide
// enough to ride out scheduler noise on shared CI runners, tight enough
// to catch a real regression in the FFT engine or the fusion hot path.
const guardRegressionThreshold = 1.20

// TestBenchRegressionGuard replays the committed bench.json kernels for
// the FFT plans, the streaming engine and the sensor-fusion solve, and
// fails on a >20% ns/op regression. Opt-in (it costs benchmark time):
//
//	BENCH_GUARD=1 go test -run TestBenchRegressionGuard .
//
// CI runs it in the bench-smoke job. The guard compares against the
// committed numbers, so after an intentional perf change regenerate the
// baseline with BENCH_JSON=bench.json (see README) and commit it.
func TestBenchRegressionGuard(t *testing.T) {
	if os.Getenv("BENCH_GUARD") == "" {
		t.Skip("set BENCH_GUARD=1 to run the benchmark regression guard")
	}
	raw, err := os.ReadFile("bench.json")
	if err != nil {
		t.Fatalf("no committed baseline: %v", err)
	}
	var sum BenchSummary
	if err := json.Unmarshal(raw, &sum); err != nil {
		t.Fatalf("bench.json: %v", err)
	}
	if sum.Schema != "uniq-bench/v1" {
		t.Fatalf("bench.json schema %q not understood", sum.Schema)
	}
	guarded := 0
	for _, rec := range sum.Benchmarks {
		if !strings.HasPrefix(rec.Name, "fft/planned/") &&
			!strings.HasPrefix(rec.Name, "stream/") && rec.Name != "fuseSensors" {
			continue
		}
		if rec.NsPerOp <= 0 {
			t.Errorf("%s: committed baseline has nsPerOp %v; regenerate bench.json", rec.Name, rec.NsPerOp)
			continue
		}
		r, ok := measureKernel(rec.Name)
		if !ok {
			t.Errorf("%s: committed record has no measurable kernel; update measureKernel or bench.json", rec.Name)
			continue
		}
		guarded++
		got := float64(r.NsPerOp())
		ratio := got / rec.NsPerOp
		if ratio > guardRegressionThreshold {
			t.Errorf("%s regressed: %.0f ns/op vs committed %.0f ns/op (%.2fx > %.2fx allowed)",
				rec.Name, got, rec.NsPerOp, ratio, guardRegressionThreshold)
		} else {
			t.Logf("%s: %.0f ns/op vs committed %.0f ns/op (%.2fx)", rec.Name, got, rec.NsPerOp, ratio)
		}
	}
	if guarded == 0 {
		t.Fatal("bench.json contains no guarded kernels; regenerate it with BENCH_JSON=bench.json")
	}
}
