package repro

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// guardRegressionThreshold fails the guard when a kernel runs this much
// slower than the committed bench.json record (1.20 = +20% ns/op). Wide
// enough to ride out scheduler noise on shared CI runners, tight enough
// to catch a real regression in the FFT engine or the fusion hot path.
const guardRegressionThreshold = 1.20

// TestBenchRegressionGuard replays the committed bench.json kernels for
// the FFT plans, the streaming engine (convolver and AoA tracker), the
// sensor-fusion solve on both its exact and cascade paths, and the
// whole-pipeline personalize records, and fails on a >20% ns/op
// regression. Opt-in (it costs benchmark time):
//
//	BENCH_GUARD=1 go test -run TestBenchRegressionGuard .
//
// CI runs it in the bench-smoke job. The guard compares against the
// committed numbers, so after an intentional perf change regenerate the
// baseline with BENCH_JSON=bench.json (see README) and commit it.
func TestBenchRegressionGuard(t *testing.T) {
	if os.Getenv("BENCH_GUARD") == "" {
		t.Skip("set BENCH_GUARD=1 to run the benchmark regression guard")
	}
	raw, err := os.ReadFile("bench.json")
	if err != nil {
		t.Fatalf("no committed baseline: %v", err)
	}
	var sum BenchSummary
	if err := json.Unmarshal(raw, &sum); err != nil {
		t.Fatalf("bench.json: %v", err)
	}
	if sum.Schema != "uniq-bench/v1" {
		t.Fatalf("bench.json schema %q not understood", sum.Schema)
	}
	guarded := 0
	for _, rec := range sum.Benchmarks {
		if !strings.HasPrefix(rec.Name, "fft/planned/") &&
			!strings.HasPrefix(rec.Name, "stream/") &&
			!strings.HasPrefix(rec.Name, "store/") &&
			!strings.HasPrefix(rec.Name, "fuseSensors") &&
			!strings.HasPrefix(rec.Name, "personalize/") {
			continue
		}
		if rec.NsPerOp <= 0 {
			t.Errorf("%s: committed baseline has nsPerOp %v; regenerate bench.json", rec.Name, rec.NsPerOp)
			continue
		}
		r, ok := measureKernel(rec.Name)
		if !ok {
			t.Errorf("%s: committed record has no measurable kernel; update measureKernel or bench.json", rec.Name)
			continue
		}
		guarded++
		got := float64(r.NsPerOp())
		// A one-shot replay on a shared runner can land on a transient
		// load spike far beyond the guard threshold. A real regression
		// survives re-measurement; noise does not — so re-measure a
		// kernel that looks regressed (up to twice) and keep the best.
		for tries := 0; got/rec.NsPerOp > guardRegressionThreshold && tries < 2; tries++ {
			if r2, ok := measureKernel(rec.Name); ok {
				if g := float64(r2.NsPerOp()); g > 0 && g < got {
					got = g
				}
			}
		}
		ratio := got / rec.NsPerOp
		if ratio > guardRegressionThreshold {
			t.Errorf("%s regressed: %.0f ns/op vs committed %.0f ns/op (%.2fx > %.2fx allowed)",
				rec.Name, got, rec.NsPerOp, ratio, guardRegressionThreshold)
		} else {
			t.Logf("%s: %.0f ns/op vs committed %.0f ns/op (%.2fx)", rec.Name, got, rec.NsPerOp, ratio)
		}
	}
	if guarded == 0 {
		t.Fatal("bench.json contains no guarded kernels; regenerate it with BENCH_JSON=bench.json")
	}
}
