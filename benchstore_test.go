package repro

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/head"
	"repro/internal/hrtf"
	"repro/internal/segstore"
	"repro/internal/sim"
)

// Store bench shape: enough profiles that reads stride across records, a
// realistic measured table per profile (smooth HRIRs — what the XOR codec
// sees in production, not sparse synthetic impulses).
const (
	storeBenchProfiles  = 32
	storeBenchBulkBatch = 64
)

// storeBenchTable memoizes one measured ground-truth table shared by every
// store kernel (measuring it costs more than the benchmarks themselves).
var storeBenchTable struct {
	sync.Once
	tab *hrtf.Table
	err error
}

func storeBenchTab() (*hrtf.Table, error) {
	s := &storeBenchTable
	s.Do(func() { s.tab, s.err = sim.MeasureGroundTruthFar(sim.NewVolunteer(1, 3), 48000, 10) })
	return s.tab, s.err
}

// storeBenchProfile builds one profile around the shared table. The
// metadata varies per user so records are not byte-identical.
func storeBenchProfile(user string, i int, tab *hrtf.Table) *segstore.Profile {
	return &segstore.Profile{
		User:            user,
		JobID:           fmt.Sprintf("bench%016x", i),
		CreatedUnixMS:   1700000000000 + int64(i),
		HeadParams:      head.Params{A: 0.09 + float64(i)*1e-4, B: 0.08, C: 0.095},
		MeanResidualDeg: 1.5 + float64(i)*0.01,
		GestureOK:       true,
		Table:           tab,
	}
}

func storeBenchUsers(n int) []string {
	users := make([]string, n)
	for i := range users {
		users[i] = fmt.Sprintf("bench-user-%03d", i)
	}
	return users
}

// openColdStore fills a fresh segment store under dir with n profiles.
func openColdStore(dir string, n int) (*segstore.Store, []string, error) {
	tab, err := storeBenchTab()
	if err != nil {
		return nil, nil, err
	}
	st, err := segstore.Open(dir, segstore.Options{})
	if err != nil {
		return nil, nil, err
	}
	users := storeBenchUsers(n)
	batch := make([]*segstore.Profile, n)
	for i, u := range users {
		batch[i] = storeBenchProfile(u, i, tab)
	}
	if err := st.PutBatch(batch); err != nil {
		st.Close()
		return nil, nil, err
	}
	return st, users, nil
}

// writeLegacyJSONStore renders the same profiles in the pre-segment layout
// (one JSON file per user) and returns the paths plus total bytes.
func writeLegacyJSONStore(dir string, n int) ([]string, int64, error) {
	tab, err := storeBenchTab()
	if err != nil {
		return nil, 0, err
	}
	users := storeBenchUsers(n)
	paths := make([]string, n)
	var total int64
	for i, u := range users {
		data, err := json.Marshal(storeBenchProfile(u, i, tab))
		if err != nil {
			return nil, 0, err
		}
		paths[i] = filepath.Join(dir, u+".json")
		if err := os.WriteFile(paths[i], data, 0o644); err != nil {
			return nil, 0, err
		}
		total += int64(len(data))
	}
	return paths, total, nil
}

// measureStoreKernel handles the store/* bench.json kernels. Each one
// measures the persistence layer with no LRU in front:
//
//	store/coldread       indexed point read + binary decode per op
//	store/coldread-json  the legacy baseline: ReadFile + json.Unmarshal
//	store/put            one durable profile write (group-commit fsync path)
//	store/bulkload       PutBatch of storeBenchBulkBatch profiles per op
func measureStoreKernel(name string) (testing.BenchmarkResult, bool) {
	switch name {
	case "store/coldread":
		dir, err := os.MkdirTemp("", "benchstore")
		if err != nil {
			return testing.BenchmarkResult{}, false
		}
		defer os.RemoveAll(dir)
		st, users, err := openColdStore(dir, storeBenchProfiles)
		if err != nil {
			return testing.BenchmarkResult{}, false
		}
		defer st.Close()
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := st.Get(users[i%len(users)]); err != nil {
					b.Fatal(err)
				}
			}
		}), true
	case "store/coldread-json":
		dir, err := os.MkdirTemp("", "benchstore")
		if err != nil {
			return testing.BenchmarkResult{}, false
		}
		defer os.RemoveAll(dir)
		paths, _, err := writeLegacyJSONStore(dir, storeBenchProfiles)
		if err != nil {
			return testing.BenchmarkResult{}, false
		}
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				data, err := os.ReadFile(paths[i%len(paths)])
				if err != nil {
					b.Fatal(err)
				}
				var p segstore.Profile
				if err := json.Unmarshal(data, &p); err != nil {
					b.Fatal(err)
				}
			}
		}), true
	case "store/put":
		dir, err := os.MkdirTemp("", "benchstore")
		if err != nil {
			return testing.BenchmarkResult{}, false
		}
		defer os.RemoveAll(dir)
		tab, err := storeBenchTab()
		if err != nil {
			return testing.BenchmarkResult{}, false
		}
		st, err := segstore.Open(dir, segstore.Options{})
		if err != nil {
			return testing.BenchmarkResult{}, false
		}
		defer st.Close()
		users := storeBenchUsers(storeBenchProfiles)
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := st.Put(storeBenchProfile(users[i%len(users)], i, tab)); err != nil {
					b.Fatal(err)
				}
			}
		}), true
	case "store/bulkload":
		tab, err := storeBenchTab()
		if err != nil {
			return testing.BenchmarkResult{}, false
		}
		users := storeBenchUsers(storeBenchBulkBatch)
		batch := make([]*segstore.Profile, len(users))
		for i, u := range users {
			batch[i] = storeBenchProfile(u, i, tab)
		}
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir, err := os.MkdirTemp("", "benchstore")
				if err != nil {
					b.Fatal(err)
				}
				st, err := segstore.Open(dir, segstore.Options{})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				// The measured span is the bulk-load contract: every profile
				// appended and the batch durable (one group commit).
				if err := st.PutBatch(batch); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				st.Close()
				os.RemoveAll(dir)
				b.StartTimer()
			}
		}), true
	}
	return testing.BenchmarkResult{}, false
}

// storeBenchFootprint reports bytes-on-disk per profile for the segment
// store vs the legacy JSON layout over the same profile set (the space half
// of the cold-read comparison; both are also recorded in bench.json).
func storeBenchFootprint() (segBytes, jsonBytes int64, err error) {
	segDir, err := os.MkdirTemp("", "benchstore")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(segDir)
	st, _, err := openColdStore(segDir, storeBenchProfiles)
	if err != nil {
		return 0, 0, err
	}
	stats := st.Stats()
	st.Close()
	segBytes = stats.DiskBytes / int64(stats.Profiles)

	jsonDir, err := os.MkdirTemp("", "benchstore")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(jsonDir)
	_, total, err := writeLegacyJSONStore(jsonDir, storeBenchProfiles)
	if err != nil {
		return 0, 0, err
	}
	jsonBytes = total / storeBenchProfiles
	return segBytes, jsonBytes, nil
}

// TestStoreBenchKernelsRun is a fast sanity check (no env gate) that every
// store kernel measures successfully — so a rename or setup failure shows
// up in plain `go test` rather than only in the opt-in bench jobs.
func TestStoreBenchKernelsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("store bench kernels build real stores; skipped in -short")
	}
	for _, name := range []string{"store/coldread", "store/coldread-json", "store/put", "store/bulkload"} {
		if _, ok := measureKernel(name); !ok {
			t.Errorf("kernel %q did not measure", name)
		}
	}
	segB, jsonB, err := storeBenchFootprint()
	if err != nil {
		t.Fatal(err)
	}
	if segB <= 0 || jsonB <= 0 {
		t.Fatalf("footprint: seg %d, json %d", segB, jsonB)
	}
	t.Logf("bytes/profile: segment %d vs json %d (%.2fx)", segB, jsonB, float64(jsonB)/float64(segB))
}
