// Virtualmeeting demonstrates the paper's second motivating application: a
// virtual meeting room where each participant is seated at a fixed angle
// around the listener and every voice is rendered binaurally from its seat,
// with the personalized far-field HRTF keeping the seats stable even as the
// listener's head turns (the earphone IMU supplies the head rotation).
//
//	go run ./examples/virtualmeeting
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/dsp"
	"repro/uniq"
)

type participant struct {
	name    string
	seatDeg float64 // absolute seat bearing, 0 = listener's initial nose
}

func main() {
	user := uniq.VirtualUser{ID: 3, Seed: 99}
	session, err := uniq.SimulateSession(user, uniq.GestureGood)
	if err != nil {
		log.Fatal(err)
	}
	profile, err := uniq.Personalize(session, uniq.Options{})
	if err != nil {
		log.Fatal(err)
	}

	seats := []participant{
		{"amira", 30},
		{"bo", 90},
		{"chen", 150},
	}
	fmt.Println("virtual meeting: three participants seated to the listener's left")

	rng := rand.New(rand.NewSource(11))
	mix := []float64{}
	// The listener turns their head during the meeting; the seats must
	// stay fixed in the room.
	for turnIdx, headDeg := range []float64{0, 20, -15} {
		fmt.Printf("\nlistener head at %+.0f°\n", headDeg)
		for _, p := range seats {
			rel := p.seatDeg - headDeg
			if rel < 0 {
				rel = -rel // mirror to the tabulated hemisphere
			}
			if rel > 180 {
				rel = 360 - rel
			}
			utterance := dsp.Speech(0.3, session.SampleRate, rng)
			left, right, err := profile.Render(utterance, rel, true)
			if err != nil {
				log.Fatal(err)
			}
			// Report the interaural delay of the HRIR used for this
			// seat (speech onsets are too gradual to read it off the
			// rendered audio).
			h, err := profile.Table.FarAt(rel)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-6s seat %3.0f° -> rendered at %3.0f° relative, ITD %+6.0f µs, %d samples out\n",
				p.name, p.seatDeg, rel, h.ITD()*1e6, len(left))
			_ = right
			if turnIdx == 0 {
				mix = dsp.Add(mix, dsp.Scale(left, 0.33))
			}
		}
	}
	fmt.Printf("\nmixed left-channel meeting audio: %d samples, peak %.2f\n",
		len(mix), dsp.MaxAbs(mix))
	fmt.Println("(each voice keeps its absolute seat as the head turns — the spatial-audio contract)")
}
