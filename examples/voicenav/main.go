// Voicenav demonstrates the paper's headline application: a "follow me"
// navigation voice rendered from the direction of the next waypoint, so a
// pedestrian (or a blind user) can walk toward the perceived sound instead
// of reading a map.
//
// A simulated walker starts 60 m from a destination, and at every step the
// guide voice is re-rendered with the personalized far-field HRTF from the
// waypoint's current bearing. The walker then turns toward where they
// *perceive* the voice — decoded here by running binaural AoA estimation on
// the rendered audio, closing the loop the way a human brain would.
//
//	go run ./examples/voicenav
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/dsp"
	"repro/uniq"
)

func main() {
	user := uniq.VirtualUser{ID: 2, Seed: 7}
	session, err := uniq.SimulateSession(user, uniq.GestureGood)
	if err != nil {
		log.Fatal(err)
	}
	profile, err := uniq.Personalize(session, uniq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("profile ready; starting navigation")

	// World state: walker at origin heading north; destination northeast.
	walkerX, walkerY := 0.0, 0.0
	heading := 0.0 // degrees, 0 = +Y
	destX, destY := 35.0, 45.0
	voice := dsp.Speech(0.4, session.SampleRate, rand.New(rand.NewSource(3)))

	const stepMetres = 5.0
	for step := 1; step <= 40; step++ {
		dx, dy := destX-walkerX, destY-walkerY
		dist := math.Hypot(dx, dy)
		if dist < stepMetres {
			fmt.Printf("step %2d: arrived (%.1f m from target)\n", step, dist)
			return
		}
		// Bearing of the destination relative to the walker's heading,
		// in the paper's convention (0 = ahead, 90 = left).
		bearing := math.Atan2(-dx, dy)*180/math.Pi - heading
		for bearing < 0 {
			bearing += 360
		}
		// The 2-D profile covers the left hemisphere [0,180]; mirror
		// right-side bearings (the earphone app would mirror channels).
		mirrored := false
		renderBearing := bearing
		if renderBearing > 180 {
			renderBearing = 360 - renderBearing
			mirrored = true
		}
		left, right, err := profile.Render(voice, renderBearing, true)
		if err != nil {
			log.Fatal(err)
		}
		if mirrored {
			left, right = right, left
		}
		// The walker perceives a direction (decoded via binaural AoA on
		// what their ears receive) and turns toward it.
		perceived, err := profile.DirectionOf(left, right)
		if err != nil {
			log.Fatal(err)
		}
		if mirrored {
			perceived = 360 - perceived
		}
		turn := perceived
		if turn > 180 {
			turn -= 360
		}
		// Humans do not pirouette toward a sound mid-stride; cap the
		// per-step turn, which also keeps rear perceptions stable.
		if turn > 50 {
			turn = 50
		}
		if turn < -50 {
			turn = -50
		}
		heading += turn
		walkerX += -stepMetres * math.Sin(heading*math.Pi/180)
		walkerY += stepMetres * math.Cos(heading*math.Pi/180)
		fmt.Printf("step %2d: dist %5.1f m, voice at %3.0f°, perceived %3.0f°, heading now %4.0f°\n",
			step, dist, bearing, perceived, math.Mod(heading+360, 360))
	}
	fmt.Println("ran out of steps before arriving — check the HRTF!")
}
