// Hearingaid demonstrates the §4.5 application: earbuds acting as a smart
// hearing aid that tells the wearer which direction a voice came from —
// "Alice calls Bob in a noisy bar". The earbuds capture an unknown speech
// signal, and the personalized HRTF decodes its direction far better than
// the global template shipped in today's products.
//
//	go run ./examples/hearingaid
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/dsp"
	"repro/uniq"
)

func main() {
	user := uniq.VirtualUser{ID: 4, Seed: 1}
	session, err := uniq.SimulateSession(user, uniq.GestureGood)
	if err != nil {
		log.Fatal(err)
	}
	personal, err := uniq.Personalize(session, uniq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	global, err := uniq.GlobalProfile(session.SampleRate, 1)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(5))
	fmt.Println("someone calls from various directions; the earbuds estimate where:")
	fmt.Printf("%8s  %12s  %12s\n", "true°", "personal°", "global°")
	var persTotal, globTotal float64
	n := 0
	for _, trueDeg := range []float64{15, 45, 75, 105, 135, 165} {
		voice := dsp.Speech(0.35, session.SampleRate, rng)
		if dsp.RMS(voice) < 1e-4 {
			voice = dsp.Speech(0.35, session.SampleRate, rng)
		}
		left, right, err := uniq.SimulateAmbientSound(user, voice, trueDeg, session.SampleRate, 0.004)
		if err != nil {
			log.Fatal(err)
		}
		p, err := personal.DirectionOf(left, right)
		if err != nil {
			log.Fatal(err)
		}
		g, err := global.DirectionOf(left, right)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.0f  %12.0f  %12.0f\n", trueDeg, p, g)
		persTotal += math.Abs(p - trueDeg)
		globTotal += math.Abs(g - trueDeg)
		n++
	}
	fmt.Printf("\nmean error: personal %.1f°, global %.1f°\n",
		persTotal/float64(n), globTotal/float64(n))
	fmt.Println("(the personalized HRTF resolves direction — and front/back — where the global template guesses)")

	// Part two of the hearing-aid story: having located the talker, the
	// earbuds beamform toward them and null the noise source.
	fmt.Println("\nbeamforming in a noisy bar:")
	talker := dsp.Speech(0.4, session.SampleRate, rng)
	jukebox := dsp.Music(0.4, session.SampleRate, rng)
	talkerDeg, noiseDeg := 40.0, 130.0
	tL, tR, err := uniq.SimulateAmbientSound(user, talker, talkerDeg, session.SampleRate, 0)
	if err != nil {
		log.Fatal(err)
	}
	nL, nR, err := uniq.SimulateAmbientSound(user, jukebox, noiseDeg, session.SampleRate, 0)
	if err != nil {
		log.Fatal(err)
	}
	mixL := dsp.Add(tL, dsp.Scale(nL, 1.3))
	mixR := dsp.Add(tR, dsp.Scale(nR, 1.3))
	// The aid estimates both directions itself, then enhances.
	estTalker, err := personal.DirectionOf(tL, tR)
	if err != nil {
		log.Fatal(err)
	}
	estNoise, err := personal.DirectionOf(nL, nR)
	if err != nil {
		log.Fatal(err)
	}
	enhanced, err := personal.EnhanceFrom(mixL, mixR, estTalker, estNoise)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("talker estimated at %.0f° (true %.0f°), noise at %.0f° (true %.0f°)\n",
		estTalker, talkerDeg, estNoise, noiseDeg)
	// With two microphones the spatial null is the robust part of the
	// story: the jukebox all but disappears while the talker survives.
	fmt.Printf("jukebox leakage:   %.2f in the raw ear, %.2f after the null\n",
		corrOf(jukebox, mixR), corrOf(jukebox, enhanced))
	fmt.Printf("talker preserved:  %.2f in the raw ear, %.2f after the null\n",
		corrOf(talker, mixR), corrOf(talker, enhanced))
}

func corrOf(a, b []float64) float64 {
	c, _ := dsp.NormXCorrPeak(a, b)
	return c
}
