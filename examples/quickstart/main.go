// Quickstart: personalize an HRTF from a (simulated) phone sweep and render
// a spatial sound with it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/dsp"
	"repro/uniq"
)

func main() {
	// 1. Collect a measurement session. On real hardware this is the
	// user sweeping their phone around their head; here a virtual user
	// stands in.
	user := uniq.VirtualUser{ID: 1, Seed: 42}
	session, err := uniq.SimulateSession(user, uniq.GestureGood)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measurement session: %d stops at %.0f Hz, %d gyro samples\n",
		len(session.Stops), session.SampleRate, len(session.IMU))

	// 2. Personalize.
	profile, err := uniq.Personalize(session, uniq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("personalized profile: head %v, residual %.1f°\n",
		profile.HeadParams, profile.MeanResidualDeg)

	// 3. Render a sound from 60° to the user's left, far field.
	tone := dsp.Music(1.0, session.SampleRate, rand.New(rand.NewSource(7)))
	left, right, err := profile.Render(tone, 60, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rendered binaural pair: %d/%d samples; left leads right: %v\n",
		len(left), len(right), leadingEar(left, right) == "left")

	// 4. Write the binaural render as a playable WAV.
	peak := dsp.MaxAbs(left)
	if p := dsp.MaxAbs(right); p > peak {
		peak = p
	}
	if peak > 1 {
		left = dsp.Scale(left, 0.9/peak)
		right = dsp.Scale(right, 0.9/peak)
	}
	wavFile, err := os.CreateTemp("", "uniq-spatial-*.wav")
	if err != nil {
		log.Fatal(err)
	}
	defer wavFile.Close()
	if err := profile.WriteWAV(wavFile, left, right); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote binaural audio: %s\n", wavFile.Name())

	// 5. Export the lookup table for the earphone app.
	f, err := os.CreateTemp("", "uniq-profile-*.json")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(f.Name())
	if err := profile.Save(f); err != nil {
		log.Fatal(err)
	}
	info, _ := f.Stat()
	fmt.Printf("exported lookup table: %s (%d KiB)\n", f.Name(), info.Size()/1024)
}

// leadingEar reports which channel's energy arrives first.
func leadingEar(left, right []float64) string {
	li, _ := dsp.FirstPeak(left, 0.3)
	ri, _ := dsp.FirstPeak(right, 0.3)
	if li <= ri {
		return "left"
	}
	return "right"
}
