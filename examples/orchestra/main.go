// Orchestra demonstrates the paper's AR/VR vision (intro application #3)
// with the §7 3-D extension: instruments are pinned to fixed positions
// around — and above — the listener, and as the head turns (earphone IMU),
// each instrument is re-rendered from its updated relative direction so
// the stage stays put. Elevation matters here: the flourish of violins
// sits above the horizon, the cellos below.
//
//	go run ./examples/orchestra
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/dsp"
	"repro/uniq"
)

type instrument struct {
	name     string
	azDeg    float64 // world-fixed bearing
	elevDeg  float64 // elevation above the horizon
	register float64 // pitch scale for the synthesized part
}

func main() {
	user := uniq.VirtualUser{ID: 7, Seed: 2025}
	fmt.Println("measuring the user on three elevation rings (arm low / level / high)...")
	rings, err := uniq.SimulateSphericalSession(user, uniq.GestureGood, []float64{-25, 0, 25})
	if err != nil {
		log.Fatal(err)
	}
	p3, err := uniq.PersonalizeSpherical(rings, uniq.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3D profile ready (rings at %v degrees)\n", p3.Elevations())

	stage := []instrument{
		{"violins", 35, 20, 2.0},
		{"violas", 70, 5, 1.5},
		{"cellos", 110, -15, 1.0},
		{"basses", 150, -20, 0.5},
	}
	sr := 48000.0
	rng := rand.New(rand.NewSource(8))

	// The listener slowly turns their head 30 degrees during the chord.
	yaw := func(t float64) float64 { return 30 * t / 1.0 }

	var mixL, mixR []float64
	for _, inst := range stage {
		part := dsp.Scale(dsp.Music(1.0, sr, rng), inst.register*0.4)
		// Head rotation changes the relative azimuth over time; render
		// the part in short blocks at the current relative direction.
		block := int(0.05 * sr)
		for start := 0; start < len(part); start += block {
			end := start + block
			if end > len(part) {
				end = len(part)
			}
			t := float64(start) / sr
			rel := inst.azDeg - yaw(t)
			if rel < 0 {
				rel = -rel
			}
			if rel > 180 {
				rel = 360 - rel
			}
			l, r, err := p3.Render(part[start:end], rel, inst.elevDeg)
			if err != nil {
				log.Fatal(err)
			}
			mixL = mixAt(mixL, l, start)
			mixR = mixAt(mixR, r, start)
		}
		fmt.Printf("  %-8s pinned at az %3.0f°, elev %+3.0f°\n", inst.name, inst.azDeg, inst.elevDeg)
	}

	peak := dsp.MaxAbs(mixL)
	if p := dsp.MaxAbs(mixR); p > peak {
		peak = p
	}
	if peak > 1 {
		mixL = dsp.Scale(mixL, 0.9/peak)
		mixR = dsp.Scale(mixR, 0.9/peak)
	}
	out, err := os.CreateTemp("", "uniq-orchestra-*.wav")
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()
	ring, err := p3.RingProfile(0)
	if err != nil {
		log.Fatal(err)
	}
	if err := ring.WriteWAV(out, mixL, mixR); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote the binaural concert (head turning 30° through it): %s\n", out.Name())
}

func mixAt(dst, src []float64, offset int) []float64 {
	need := offset + len(src)
	if need > len(dst) {
		dst = append(dst, make([]float64, need-len(dst))...)
	}
	for i, v := range src {
		dst[offset+i] += v
	}
	return dst
}
