package uniq

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dsp"
)

// SessionBuilder assembles a SessionInput incrementally, the way a live
// app collects it: configure once, append gyro batches and per-stop
// recordings as they arrive, then Finish. The builder validates as it goes
// so problems surface at collection time rather than after the sweep.
type SessionBuilder struct {
	in      SessionInput
	lastIMU float64
	err     error
}

// NewSessionBuilder starts a session for the given probe signal and sample
// rate. syncOffset is the calibrated playback latency in seconds.
func NewSessionBuilder(probe []float64, sampleRate, syncOffset float64) *SessionBuilder {
	b := &SessionBuilder{
		in: SessionInput{
			Probe:      append([]float64(nil), probe...),
			SampleRate: sampleRate,
			SyncOffset: syncOffset,
		},
		lastIMU: math.Inf(-1),
	}
	if len(probe) == 0 {
		b.err = errors.New("uniq: builder needs a probe signal")
	}
	if sampleRate <= 0 {
		b.err = errors.New("uniq: builder needs a positive sample rate")
	}
	return b
}

// SetSystemIR attaches the measured speaker–mic response for compensation.
func (b *SessionBuilder) SetSystemIR(ir []float64) *SessionBuilder {
	if b.err == nil {
		b.in.SystemIR = append([]float64(nil), ir...)
	}
	return b
}

// AddIMU appends one gyroscope sample (t seconds from session start,
// vertical-axis rate in rad/s). Samples must arrive in time order.
func (b *SessionBuilder) AddIMU(t, rateZ float64) *SessionBuilder {
	if b.err != nil {
		return b
	}
	if t < b.lastIMU {
		b.err = fmt.Errorf("uniq: IMU sample at %.3fs arrived after %.3fs", t, b.lastIMU)
		return b
	}
	b.lastIMU = t
	b.in.IMU = append(b.in.IMU, IMUSample{T: t, RateZ: rateZ})
	return b
}

// AddStop appends one measurement stop: the probe playback started at t
// seconds and the earbuds captured the two channels.
func (b *SessionBuilder) AddStop(t float64, left, right []float64) *SessionBuilder {
	if b.err != nil {
		return b
	}
	if len(left) == 0 || len(right) == 0 {
		b.err = fmt.Errorf("uniq: stop at %.2fs has an empty channel", t)
		return b
	}
	if n := len(b.in.Stops); n > 0 && t <= b.in.Stops[n-1].Time {
		b.err = fmt.Errorf("uniq: stop at %.2fs out of order", t)
		return b
	}
	if dsp.RMS(left) == 0 && dsp.RMS(right) == 0 {
		// Accept but warn via error only at Finish if everything is
		// silent; individual silent stops are dropped by the pipeline.
		_ = t
	}
	b.in.Stops = append(b.in.Stops, StopRecording{
		Time:  t,
		Left:  append([]float64(nil), left...),
		Right: append([]float64(nil), right...),
	})
	return b
}

// Err reports the first collection error, if any.
func (b *SessionBuilder) Err() error { return b.err }

// Finish validates and returns the assembled session input.
func (b *SessionBuilder) Finish() (SessionInput, error) {
	if b.err != nil {
		return SessionInput{}, b.err
	}
	if len(b.in.Stops) < 5 {
		return SessionInput{}, fmt.Errorf("uniq: only %d stops collected; the sweep needs at least 5", len(b.in.Stops))
	}
	if len(b.in.IMU) < 2 {
		return SessionInput{}, errors.New("uniq: too few IMU samples")
	}
	if last := b.in.Stops[len(b.in.Stops)-1].Time; b.lastIMU < last {
		return SessionInput{}, fmt.Errorf("uniq: IMU log ends at %.2fs before the last stop at %.2fs", b.lastIMU, last)
	}
	return b.in, nil
}

// Confidence summarizes how much to trust a personalized profile on a 0–1
// scale, combining the sensor-fusion residual (dominant term) with the
// gesture verdict. Applications can gate features on it (e.g. require
// ≥0.7 before enabling AoA-based UI).
func (p *Profile) Confidence() float64 {
	if p == nil || p.Table == nil {
		return 0
	}
	// 0° residual -> 1.0; 10° (the rejection threshold) -> ~0.25.
	c := 1 / (1 + math.Pow(p.MeanResidualDeg/6, 2))
	if p.QualityReport != "gesture ok" && p.QualityReport != "anechoic ground truth" &&
		p.QualityReport != "global template" && p.QualityReport != "loaded from file" &&
		p.QualityReport != "ring profile" {
		c *= 0.5 // the sweep was flagged; profile forced through
	}
	return c
}
