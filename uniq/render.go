package uniq

import (
	"errors"
	"io"

	"repro/internal/geom"
	"repro/internal/render"
	"repro/internal/room"
	"repro/internal/wav"
)

// RenderMoving renders a mono source whose direction changes over time
// (e.g. the listener's head turns, or the virtual source moves): angleAt
// maps seconds to the source's current angle in degrees. Blocks are
// crossfaded, so sweeps are click-free; a constant angle reproduces Render
// exactly.
func (p *Profile) RenderMoving(mono []float64, angleAt func(t float64) float64) (left, right []float64, err error) {
	if p == nil || p.Table == nil {
		return nil, nil, errors.New("uniq: empty profile")
	}
	r := &render.Renderer{Table: p.Table}
	return r.RenderMoving(mono, angleAt)
}

// TrackHead renders a world-fixed source for a listener whose head yaw
// changes over time (the earphone IMU supplies yawAt). The source stays
// put in the world as the head turns — the paper's AR/VR orchestra
// scenario.
func (p *Profile) TrackHead(mono []float64, sourceDeg float64, yawAt func(t float64) float64) (left, right []float64, err error) {
	if p == nil || p.Table == nil {
		return nil, nil, errors.New("uniq: empty profile")
	}
	ht := &render.HeadTracker{
		Renderer:  render.Renderer{Table: p.Table},
		SourceDeg: sourceDeg,
		YawAt:     yawAt,
	}
	return ht.Render(mono)
}

// RoomOptions describes a listening room for reverberant rendering.
type RoomOptions struct {
	// Width and Depth of the room in metres (default 4 x 5).
	Width, Depth float64
	// Absorption of the walls in (0, 1] (default 0.45).
	Absorption float64
}

// RenderInRoom renders the source at angleDeg and the given distance inside
// a room, filtering with both the room's early reflections and the
// personalized HRTF — the §7 "room multipath integration" extension for
// more externalized playback.
func (p *Profile) RenderInRoom(mono []float64, angleDeg, distance float64, opt RoomOptions) (left, right []float64, err error) {
	if p == nil || p.Table == nil {
		return nil, nil, errors.New("uniq: empty profile")
	}
	if opt.Width <= 0 {
		opt.Width = 4
	}
	if opt.Depth <= 0 {
		opt.Depth = 5
	}
	if opt.Absorption <= 0 || opt.Absorption > 1 {
		opt.Absorption = 0.45
	}
	rr := &render.RoomRenderer{
		Table: p.Table,
		Room: room.Config{
			Width: opt.Width, Depth: opt.Depth,
			Origin:     geom.Vec{X: opt.Width / 2, Y: opt.Depth / 2},
			Absorption: opt.Absorption,
			MaxOrder:   2,
		},
	}
	return rr.Render(mono, angleDeg, distance)
}

// nearFieldBoundary is where the §4.4 interface switches from the
// near-field to the far-field HRIR (the paper adopts the conventional 1 m).
const nearFieldBoundary = 1.0

// RenderAtDistance spatializes a mono sound at (angleDeg, distance metres),
// making the §4.4 near/far decision for the caller: inside roughly one
// metre the measured near-field HRIR is used, beyond it the synthesized
// far-field one, with a smooth crossfade around the boundary and 1/r
// distance gain (referenced to 1 m).
func (p *Profile) RenderAtDistance(mono []float64, angleDeg, distance float64) (left, right []float64, err error) {
	if p == nil || p.Table == nil {
		return nil, nil, errors.New("uniq: empty profile")
	}
	if distance <= 0.05 {
		distance = 0.05
	}
	gain := 1.0 / distance
	if gain > 4 {
		gain = 4 // cap the whisper-in-ear boost
	}
	// Crossfade band: 0.8–1.25 m.
	wFar := 0.0
	switch {
	case distance >= 1.25*nearFieldBoundary:
		wFar = 1
	case distance > 0.8*nearFieldBoundary:
		wFar = (distance - 0.8) / (1.25 - 0.8)
	}
	var nl, nr, fl, fr []float64
	if wFar < 1 {
		nl, nr, err = p.Table.RenderAt(mono, angleDeg, false)
		if err != nil {
			return nil, nil, err
		}
	}
	if wFar > 0 {
		fl, fr, err = p.Table.RenderAt(mono, angleDeg, true)
		if err != nil {
			return nil, nil, err
		}
	}
	mix := func(near, far []float64) []float64 {
		n := len(near)
		if len(far) > n {
			n = len(far)
		}
		out := make([]float64, n)
		for i := range out {
			v := 0.0
			if i < len(near) {
				v += (1 - wFar) * near[i]
			}
			if i < len(far) {
				v += wFar * far[i]
			}
			out[i] = gain * v
		}
		return out
	}
	return mix(nl, fl), mix(nr, fr), nil
}

// WriteWAV writes a rendered binaural pair as a 16-bit stereo WAV at the
// profile's sample rate.
func (p *Profile) WriteWAV(w io.Writer, left, right []float64) error {
	if p == nil || p.Table == nil {
		return errors.New("uniq: empty profile")
	}
	return wav.EncodeStereo(w, left, right, int(p.Table.SampleRate))
}
