package uniq

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/dsp"
)

// groundTruthProfileForTest avoids the full pipeline for render-only tests.
func groundTruthProfileForTest(t *testing.T) *Profile {
	t.Helper()
	p, err := GroundTruthProfile(VirtualUser{ID: 5, Seed: 6}, 48000, 2)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRenderMovingPublic(t *testing.T) {
	p := groundTruthProfileForTest(t)
	mono := dsp.Tone(500, 0.2, 48000)
	l, r, err := p.RenderMoving(mono, func(t float64) float64 { return 30 + 300*t })
	if err != nil {
		t.Fatal(err)
	}
	if len(l) == 0 || len(r) == 0 {
		t.Fatal("empty moving render")
	}
	var nilProfile *Profile
	if _, _, err := nilProfile.RenderMoving(mono, nil); err == nil {
		t.Error("nil profile should fail")
	}
}

func TestTrackHeadPublic(t *testing.T) {
	p := groundTruthProfileForTest(t)
	mono := dsp.Tone(700, 0.3, 48000)
	l, r, err := p.TrackHead(mono, 45, func(t float64) float64 { return 90 * t })
	if err != nil {
		t.Fatal(err)
	}
	if len(l) == 0 || len(r) == 0 {
		t.Fatal("empty tracked render")
	}
}

func TestRenderInRoomPublic(t *testing.T) {
	p := groundTruthProfileForTest(t)
	click := dsp.DelayedImpulse(1024, 512, 1)
	dryL, _, err := p.Render(click, 60, true)
	if err != nil {
		t.Fatal(err)
	}
	wetL, wetR, err := p.RenderInRoom(click, 60, 1.2, RoomOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(wetL) <= len(dryL) {
		t.Error("room render should have a longer tail than the anechoic render")
	}
	if dsp.Energy(wetL)+dsp.Energy(wetR) <= dsp.Energy(dryL) {
		t.Error("room render should carry reflection energy")
	}
}

func TestWriteWAVPublic(t *testing.T) {
	p := groundTruthProfileForTest(t)
	mono := dsp.Tone(500, 0.05, 48000)
	l, r, err := p.Render(mono, 45, true)
	if err != nil {
		t.Fatal(err)
	}
	// Normalize to avoid clipping in the WAV.
	peak := math.Max(dsp.MaxAbs(l), dsp.MaxAbs(r))
	if peak > 1 {
		l = dsp.Scale(l, 0.9/peak)
		r = dsp.Scale(r, 0.9/peak)
	}
	var buf bytes.Buffer
	if err := p.WriteWAV(&buf, l, r); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 44+len(l)*4 {
		t.Errorf("WAV suspiciously small: %d bytes", buf.Len())
	}
}
