package uniq

import (
	"testing"

	"repro/internal/dsp"
)

func TestSphericalPublicAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-ring pipeline")
	}
	u := VirtualUser{ID: 6, Seed: 12}
	rings, err := SimulateSphericalSession(u, GestureGood, []float64{0, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(rings) != 2 {
		t.Fatalf("%d rings", len(rings))
	}
	p3, err := PersonalizeSpherical(rings, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := p3.Elevations(); len(got) != 2 || got[0] != 0 || got[1] != 30 {
		t.Fatalf("elevations %v", got)
	}
	mono := dsp.Tone(600, 0.05, 48000)
	l, r, err := p3.Render(mono, 70, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(l) == 0 || len(r) == 0 {
		t.Fatal("empty 3D render")
	}
	ring, err := p3.RingProfile(0)
	if err != nil {
		t.Fatal(err)
	}
	if ring.Table == nil {
		t.Fatal("ring profile missing table")
	}
	if _, err := p3.RingProfile(99); err == nil {
		t.Error("unknown ring should fail")
	}
	var nilP *Profile3D
	if _, _, err := nilP.Render(mono, 0, 0); err == nil {
		t.Error("nil 3D profile should fail")
	}
	if nilP.Elevations() != nil {
		t.Error("nil 3D profile elevations should be nil")
	}
}

func TestSphericalSessionValidation(t *testing.T) {
	if _, err := SimulateSphericalSession(VirtualUser{ID: 1, Seed: 1}, GestureGood, nil); err == nil {
		t.Error("no elevations should fail")
	}
	if _, err := PersonalizeSpherical(nil, Options{}); err == nil {
		t.Error("no rings should fail")
	}
}
