package uniq

import (
	"strings"
	"testing"

	"repro/internal/hrtf"
)

func TestSessionBuilderHappyPath(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	// Rebuild a simulated session through the builder and verify the
	// pipeline accepts the result identically.
	u := VirtualUser{ID: 1, Seed: 42}
	ref, err := SimulateSession(u, GestureGood)
	if err != nil {
		t.Fatal(err)
	}
	b := NewSessionBuilder(ref.Probe, ref.SampleRate, ref.SyncOffset).SetSystemIR(ref.SystemIR)
	for _, s := range ref.IMU {
		b.AddIMU(s.T, s.RateZ)
	}
	for _, stop := range ref.Stops {
		b.AddStop(stop.Time, stop.Left, stop.Right)
	}
	in, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Personalize(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Confidence() < 0.3 {
		t.Errorf("good sweep confidence %.2f too low", prof.Confidence())
	}
}

func TestSessionBuilderValidation(t *testing.T) {
	probe := Chirp(200, 8000, 0.02, 48000)

	if _, err := NewSessionBuilder(nil, 48000, 0).Finish(); err == nil {
		t.Error("missing probe should fail")
	}
	if _, err := NewSessionBuilder(probe, 0, 0).Finish(); err == nil {
		t.Error("zero rate should fail")
	}

	b := NewSessionBuilder(probe, 48000, 0)
	b.AddIMU(1, 0).AddIMU(0.5, 0)
	if b.Err() == nil || !strings.Contains(b.Err().Error(), "after") {
		t.Errorf("out-of-order IMU should fail, got %v", b.Err())
	}

	b = NewSessionBuilder(probe, 48000, 0)
	b.AddStop(1, []float64{1}, nil)
	if b.Err() == nil {
		t.Error("empty channel should fail")
	}

	b = NewSessionBuilder(probe, 48000, 0)
	b.AddStop(2, []float64{1}, []float64{1}).AddStop(1, []float64{1}, []float64{1})
	if b.Err() == nil {
		t.Error("out-of-order stop should fail")
	}

	// Too few stops.
	b = NewSessionBuilder(probe, 48000, 0)
	b.AddIMU(0, 0).AddIMU(10, 0)
	b.AddStop(1, []float64{1}, []float64{1})
	if _, err := b.Finish(); err == nil {
		t.Error("too few stops should fail")
	}

	// IMU log ending before the last stop.
	b = NewSessionBuilder(probe, 48000, 0)
	b.AddIMU(0, 0).AddIMU(1, 0)
	for i := 0; i < 6; i++ {
		b.AddStop(float64(i)+0.5, []float64{1}, []float64{1})
	}
	if _, err := b.Finish(); err == nil {
		t.Error("short IMU log should fail")
	}
}

func TestConfidenceScale(t *testing.T) {
	var nilP *Profile
	if nilP.Confidence() != 0 {
		t.Error("nil profile confidence should be 0")
	}
	good := &Profile{Table: newEmptyTableForTest(), MeanResidualDeg: 1, QualityReport: "gesture ok"}
	bad := &Profile{Table: newEmptyTableForTest(), MeanResidualDeg: 9, QualityReport: "gesture ok"}
	flagged := &Profile{Table: newEmptyTableForTest(), MeanResidualDeg: 1, QualityReport: "phone too close"}
	if !(good.Confidence() > bad.Confidence()) {
		t.Error("confidence should fall with residual")
	}
	if !(good.Confidence() > flagged.Confidence()) {
		t.Error("flagged sweeps should lose confidence")
	}
	if good.Confidence() <= 0.8 {
		t.Errorf("1-degree residual should be high confidence, got %.2f", good.Confidence())
	}
}

// newEmptyTableForTest builds a minimal table so Confidence sees a non-nil
// profile.
func newEmptyTableForTest() *hrtf.Table { return hrtf.NewTable(48000, 0, 90, 3) }
