// Package uniq is the public API of the UNIQ HRTF personalization system
// (SIGCOMM 2021: "Personalizing Head Related Transfer Functions for
// Earables").
//
// A downstream application uses it in three steps:
//
//  1. Collect a measurement session: the user wears earbuds with in-ear
//     microphones and sweeps their phone around their head while it plays
//     the probe signal; the app records stereo audio per stop and the
//     phone's gyroscope throughout. (For experimentation without hardware,
//     SimulateSession produces an equivalent session from a virtual user.)
//
//  2. Call Personalize. It estimates the per-stop acoustic channels,
//     jointly fits the user's head-diffraction parameters and the phone
//     track (sensor fusion), interpolates the near-field HRTF and
//     synthesizes the far-field HRTF. The result is a Profile.
//
//  3. Use the Profile: render spatial audio from any direction
//     (Profile.Render), estimate the direction of ambient sounds
//     (Profile.DirectionOf, Profile.DirectionOfKnown), or export/import
//     the underlying lookup table as JSON (Profile.Save, Load).
package uniq

import (
	"errors"
	"io"

	"repro/internal/core"
	"repro/internal/head"
	"repro/internal/hrtf"
	"repro/internal/imu"
)

// SessionInput is a measurement session as collected by a deployment. See
// core.SessionInput; the alias keeps one definition of the contract.
type SessionInput = core.SessionInput

// StopRecording is one measurement stop's stereo recording.
type StopRecording = core.StopRecording

// IMUSample is one gyroscope reading (vertical-axis rate, rad/s).
type IMUSample = imu.Sample

// ErrBadGesture is returned by Personalize when the sweep failed the
// automatic quality check and should be redone.
var ErrBadGesture = core.ErrBadGesture

// Profile is a personalized HRTF profile for one user.
type Profile struct {
	// Table is the §4.4 lookup table (near- and far-field HRIRs indexed
	// by angle in degrees, 0 = straight ahead, 90 = left, 180 = behind).
	Table *hrtf.Table
	// HeadParams are the fitted head-shape parameters E = (a, b, c) in
	// metres.
	HeadParams head.Params
	// QualityReport summarizes the measurement sweep.
	QualityReport string
	// MeanResidualDeg is the sensor-fusion residual; small values
	// indicate a trustworthy profile.
	MeanResidualDeg float64
}

// Options tunes Personalize. The zero value is a good default.
type Options struct {
	// SkipGestureCheck accepts sweeps that would otherwise be rejected.
	SkipGestureCheck bool
	// DisableRoomEchoTruncation keeps room reverberation in the
	// estimated channels (not recommended; exists for analysis).
	DisableRoomEchoTruncation bool
}

// Personalize runs the full UNIQ pipeline on a measurement session.
func Personalize(in SessionInput, opt Options) (*Profile, error) {
	p, err := core.Personalize(in, core.PipelineOptions{
		SkipGestureCheck:      opt.SkipGestureCheck,
		DisableRoomTruncation: opt.DisableRoomEchoTruncation,
	})
	if err != nil {
		return nil, err
	}
	reason := "gesture ok"
	if !p.Gesture.OK {
		reason = p.Gesture.Reason
	}
	return &Profile{
		Table:           p.Table,
		HeadParams:      p.HeadParams,
		QualityReport:   reason,
		MeanResidualDeg: p.MeanResidualDeg,
	}, nil
}

// Render spatializes a mono sound so the listener perceives it arriving
// from angleDeg. Set farField for sources beyond roughly one metre (the
// usual case); near-field rendering uses the measured arm-distance HRTF.
func (p *Profile) Render(mono []float64, angleDeg float64, farField bool) (left, right []float64, err error) {
	if p == nil || p.Table == nil {
		return nil, nil, errors.New("uniq: empty profile")
	}
	return p.Table.RenderAt(mono, angleDeg, farField)
}

// DirectionOf estimates the arrival angle (degrees, 0–180) of an unknown
// ambient sound captured by the two in-ear microphones.
func (p *Profile) DirectionOf(left, right []float64) (float64, error) {
	est, err := core.EstimateAoAUnknown(left, right, p.Table, core.AoAOptions{})
	if err != nil {
		return 0, err
	}
	return est.AngleDeg, nil
}

// DirectionOfKnown estimates the arrival angle of a known source signal
// (e.g. a beacon the app itself emits).
func (p *Profile) DirectionOfKnown(left, right, src []float64) (float64, error) {
	est, err := core.EstimateAoAKnown(left, right, src, p.Table, core.AoAOptions{})
	if err != nil {
		return 0, err
	}
	return est.AngleDeg, nil
}

// EnhanceFrom beamforms toward a target direction using the personalized
// HRTF (the hearing-aid scenario of §4.5: listen to the person you face in
// a noisy room). Pass the direction of a known interferer as nullDeg to
// steer a spatial null at it — with two microphones one null is available,
// and it provides most of the benefit; pass a negative nullDeg to skip.
func (p *Profile) EnhanceFrom(left, right []float64, targetDeg, nullDeg float64) ([]float64, error) {
	if p == nil || p.Table == nil {
		return nil, errors.New("uniq: empty profile")
	}
	opt := core.BeamformOptions{}
	if nullDeg >= 0 {
		opt.NullAngleDeg = &nullDeg
		// Callers typically obtained nullDeg from AoA estimation;
		// power-minimizing refinement absorbs that estimation error.
		opt.AdaptiveNull = true
	}
	return core.BeamformToward(left, right, targetDeg, p.Table, opt)
}

// MeasureSyncOffset calibrates the playback chain's latency from a loopback
// recording (play the probe with the mic held at the speaker; pass the
// recording here). The result goes into SessionInput.SyncOffset.
func MeasureSyncOffset(loopback, probe []float64, sampleRate float64) (float64, error) {
	return core.MeasureSyncOffset(loopback, probe, sampleRate)
}

// Compact returns a copy of the profile with the lookup table downsampled
// to every step-th angle — for shipping to constrained devices.
func (p *Profile) Compact(step int) *Profile {
	if p == nil || p.Table == nil {
		return p
	}
	return &Profile{
		Table:           p.Table.Compact(step),
		HeadParams:      p.HeadParams,
		QualityReport:   p.QualityReport,
		MeanResidualDeg: p.MeanResidualDeg,
	}
}

// Save writes the profile's lookup table as JSON.
func (p *Profile) Save(w io.Writer) error {
	if p == nil || p.Table == nil {
		return errors.New("uniq: empty profile")
	}
	return p.Table.Encode(w)
}

// Load reads a lookup table previously written by Save and wraps it in a
// Profile (head parameters are not persisted in the table format).
func Load(r io.Reader) (*Profile, error) {
	t, err := hrtf.Decode(r)
	if err != nil {
		return nil, err
	}
	return &Profile{Table: t, QualityReport: "loaded from file"}, nil
}
