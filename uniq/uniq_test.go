package uniq

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dsp"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	u := VirtualUser{ID: 1, Seed: 2024}
	in, err := SimulateSession(u, GestureGood)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Personalize(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Table == nil || prof.Table.NumAngles() == 0 {
		t.Fatal("empty profile table")
	}

	// The personalized profile should be closer to ground truth than the
	// global template is.
	gnd, err := GroundTruthProfile(u, in.SampleRate, 1)
	if err != nil {
		t.Fatal(err)
	}
	glob, err := GlobalProfile(in.SampleRate, 1)
	if err != nil {
		t.Fatal(err)
	}
	sPers := Similarity(gnd, prof)
	sGlob := Similarity(gnd, glob)
	t.Logf("similarity to ground truth: personalized %.3f, global %.3f", sPers, sGlob)
	if sPers <= sGlob {
		t.Errorf("personalized (%.3f) should beat global (%.3f)", sPers, sGlob)
	}

	// Rendering and AoA round trip: render via ground truth world, then
	// let the profile estimate the direction back.
	src := dsp.WhiteNoise(9600, rand.New(rand.NewSource(5)))
	left, right, err := SimulateAmbientSound(u, src, 70, in.SampleRate, 0.003)
	if err != nil {
		t.Fatal(err)
	}
	deg, err := prof.DirectionOf(left, right)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(deg-70) > 25 {
		t.Errorf("DirectionOf = %.0f deg, want ~70", deg)
	}

	// Save/Load round trip.
	var buf bytes.Buffer
	if err := prof.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if Similarity(prof, back) < 0.999 {
		t.Error("profile changed across save/load")
	}

	// Render produces a binaural pair.
	l, r, err := prof.Render(src[:2400], 45, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(l) == 0 || len(r) == 0 {
		t.Error("render returned empty channels")
	}
}

func TestPersonalizeRejectsBadGesture(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	u := VirtualUser{ID: 9, Seed: 3}
	in, err := SimulateSession(u, GestureArmDroop)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Personalize(in, Options{}); err == nil {
		t.Error("bad gesture should be rejected")
	}
	prof, err := Personalize(in, Options{SkipGestureCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if prof.QualityReport == "gesture ok" {
		t.Error("quality report should carry the rejection reason")
	}
}

func TestEmptyProfileGuards(t *testing.T) {
	var p *Profile
	if _, _, err := p.Render([]float64{1}, 0, true); err == nil {
		t.Error("nil profile render should fail")
	}
	if err := p.Save(&bytes.Buffer{}); err == nil {
		t.Error("nil profile save should fail")
	}
	if Similarity(nil, nil) != 0 {
		t.Error("nil similarity should be 0")
	}
}

func TestChirpExposed(t *testing.T) {
	c := Chirp(100, 1000, 0.01, 48000)
	if len(c) != 480 {
		t.Errorf("chirp length %d", len(c))
	}
}
