package uniq

import (
	"math/rand"

	"repro/internal/acoustic"
	"repro/internal/dsp"
	"repro/internal/hrtf"
	"repro/internal/room"
	"repro/internal/sim"
)

// VirtualUser identifies a reproducible simulated person: head geometry and
// pinna anatomy derive deterministically from (ID, Seed).
type VirtualUser struct {
	ID   int
	Seed int64
}

// GestureQuality mirrors sim.GestureQuality for the public API.
type GestureQuality = sim.GestureQuality

// Gesture quality levels for SimulateSession.
const (
	GestureGood     = sim.GestureGood
	GestureArmDroop = sim.GestureArmDroop
	GestureWild     = sim.GestureWild
)

// SimulateSession produces a complete measurement session for a virtual
// user — the drop-in substitute for real phone + earbud hardware. The
// returned input feeds Personalize directly.
func SimulateSession(u VirtualUser, quality GestureQuality) (SessionInput, error) {
	v := sim.NewVolunteer(u.ID, u.Seed)
	s, err := sim.RunSession(v, sim.SessionConfig{Quality: quality})
	if err != nil {
		return SessionInput{}, err
	}
	in := SessionInput{
		Probe:      s.Probe,
		SampleRate: s.SampleRate,
		IMU:        s.IMU,
		SystemIR:   s.SystemIR,
		SyncOffset: s.SyncOffset,
	}
	for _, m := range s.Measurements {
		in.Stops = append(in.Stops, StopRecording{Time: m.Time, Left: m.Rec.Left, Right: m.Rec.Right})
	}
	return in, nil
}

// SimulateAmbientSound renders what the virtual user's earbuds would record
// for a far-field source playing src from angleDeg — useful for testing
// DirectionOf end to end without hardware.
func SimulateAmbientSound(u VirtualUser, src []float64, angleDeg, sampleRate, noiseStd float64) (left, right []float64, err error) {
	v := sim.NewVolunteer(u.ID, u.Seed)
	w, err := v.World(sampleRate, room.Config{Width: 8, Depth: 8, Absorption: 0.9, MaxOrder: 0})
	if err != nil {
		return nil, nil, err
	}
	rec, err := w.RecordFarField(src, angleDeg, acoustic.RecordOptions{
		NoiseStd: noiseStd,
		Rng:      rand.New(rand.NewSource(u.Seed ^ int64(angleDeg*1000))),
	})
	if err != nil {
		return nil, nil, err
	}
	return rec.Left, rec.Right, nil
}

// GroundTruthProfile measures the virtual user's true far-field HRTF in a
// simulated anechoic chamber — the evaluation upper bound. Real deployments
// cannot call this; it exists so experiments and examples can quantify
// personalization quality.
func GroundTruthProfile(u VirtualUser, sampleRate, stepDeg float64) (*Profile, error) {
	v := sim.NewVolunteer(u.ID, u.Seed)
	t, err := sim.MeasureGroundTruthFar(v, sampleRate, stepDeg)
	if err != nil {
		return nil, err
	}
	return &Profile{Table: t, HeadParams: v.Head, QualityReport: "anechoic ground truth"}, nil
}

// GlobalProfile returns the non-personalized population-average template —
// the baseline today's products ship.
func GlobalProfile(sampleRate, stepDeg float64) (*Profile, error) {
	t, err := sim.GlobalTemplateFar(sampleRate, stepDeg)
	if err != nil {
		return nil, err
	}
	return &Profile{Table: t, QualityReport: "global template"}, nil
}

// Similarity reports the mean per-ear HRIR correlation between two
// profiles' far-field tables over their overlapping angles — the paper's
// personalization-quality metric (Fig 18).
func Similarity(a, b *Profile) float64 {
	if a == nil || b == nil || a.Table == nil || b.Table == nil {
		return 0
	}
	n := 0
	total := 0.0
	for i := 0; i < a.Table.NumAngles(); i++ {
		angle := a.Table.Angle(i)
		ha := a.Table.Far[i]
		hb, err := b.Table.FarAt(angle)
		if err != nil || ha.Empty() || hb.Empty() {
			continue
		}
		total += hrtf.MeanCorrelation(ha, hb)
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// Chirp exposes the standard probe generator so deployments can emit the
// same signal the estimator expects.
func Chirp(f0, f1, seconds, sampleRate float64) []float64 {
	return dsp.Chirp(f0, f1, seconds, sampleRate)
}
