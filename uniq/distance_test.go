package uniq

import (
	"testing"

	"repro/internal/dsp"
)

// distanceProfile personalizes once for the distance-rendering tests (the
// near table requires the pipeline; ground-truth profiles only carry far
// entries).
func distanceProfile(t *testing.T) *Profile {
	t.Helper()
	in, err := SimulateSession(VirtualUser{ID: 1, Seed: 42}, GestureGood)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Personalize(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRenderAtDistance(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	p := distanceProfile(t)
	click := dsp.DelayedImpulse(512, 128, 1)

	// Closer is louder.
	nearL, _, err := p.RenderAtDistance(click, 60, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	farL, farR, err := p.RenderAtDistance(click, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dsp.Energy(nearL) <= dsp.Energy(farL) {
		t.Error("a 0.4 m source should be louder than a 3 m one")
	}

	// Beyond the boundary the render matches the pure far-field path
	// up to the 1/r gain.
	pureL, pureR, err := p.Render(click, 60, true)
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := dsp.NormXCorrPeak(farL, pureL)
	cr, _ := dsp.NormXCorrPeak(farR, pureR)
	if cl < 0.999 || cr < 0.999 {
		t.Errorf("far render should match the far table (corr %.4f/%.4f)", cl, cr)
	}

	// Inside the boundary it matches the near table.
	pnL, _, err := p.Render(click, 60, false)
	if err != nil {
		t.Fatal(err)
	}
	cn, _ := dsp.NormXCorrPeak(nearL, pnL)
	if cn < 0.999 {
		t.Errorf("near render should match the near table (corr %.4f)", cn)
	}

	// The crossfade midpoint blends both (correlates well with either).
	midL, _, err := p.RenderAtDistance(click, 60, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	cmn, _ := dsp.NormXCorrPeak(midL, pnL)
	cmf, _ := dsp.NormXCorrPeak(midL, pureL)
	if cmn < 0.8 || cmf < 0.8 {
		t.Errorf("boundary render should resemble both fields (%.3f near, %.3f far)", cmn, cmf)
	}

	var nilP *Profile
	if _, _, err := nilP.RenderAtDistance(click, 0, 1); err == nil {
		t.Error("nil profile should fail")
	}
}
