package uniq_test

import (
	"fmt"
	"math"

	"repro/uniq"
)

// Example demonstrates the full personalize-and-render flow against the
// built-in simulator (real deployments fill SessionInput from hardware).
func Example() {
	user := uniq.VirtualUser{ID: 1, Seed: 42}
	session, err := uniq.SimulateSession(user, uniq.GestureGood)
	if err != nil {
		panic(err)
	}
	profile, err := uniq.Personalize(session, uniq.Options{})
	if err != nil {
		panic(err)
	}
	// Render a click from 60 degrees to the listener's left.
	click := []float64{1}
	left, right, err := profile.Render(click, 60, true)
	if err != nil {
		panic(err)
	}
	fmt.Println("left ear leads:", firstEnergy(left) < firstEnergy(right))
	// Output: left ear leads: true
}

// firstEnergy returns the index where the first 10% of signal energy has
// accumulated — a crude but deterministic arrival marker.
func firstEnergy(x []float64) int {
	total := 0.0
	for _, v := range x {
		total += v * v
	}
	acc := 0.0
	for i, v := range x {
		acc += v * v
		if acc > total/10 {
			return i
		}
	}
	return len(x)
}

// ExampleProfile_DirectionOf shows the ambient-sound AoA application: the
// earbuds hear an unknown sound and report where it came from.
func ExampleProfile_DirectionOf() {
	user := uniq.VirtualUser{ID: 1, Seed: 42}
	// Evaluation-only shortcut: a ground-truth profile isolates the AoA
	// estimator from pipeline error for this doc example.
	profile, err := uniq.GroundTruthProfile(user, 48000, 2)
	if err != nil {
		panic(err)
	}
	// A 0.2 s noise burst arrives from 70 degrees.
	src := uniq.Chirp(300, 12000, 0.2, 48000)
	left, right, err := uniq.SimulateAmbientSound(user, src, 70, 48000, 0)
	if err != nil {
		panic(err)
	}
	deg, err := profile.DirectionOf(left, right)
	if err != nil {
		panic(err)
	}
	fmt.Println("within 10 degrees:", math.Abs(deg-70) <= 10)
	// Output: within 10 degrees: true
}
