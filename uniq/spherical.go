package uniq

import (
	"errors"
	"io"

	"repro/internal/core"
	"repro/internal/sim"
)

// The paper's §7 names 3-D (azimuth + elevation) HRTFs as the natural
// extension: "the user would now need to move the phone on a sphere around
// the head". This file implements that extension: the user repeats the
// sweep on a few elevation rings (arm lowered / level / raised), each ring
// runs the 2-D pipeline against the head cross-section its creeping wave
// sees, and lookups interpolate across rings.

// Profile3D is a personalized HRTF indexed by azimuth and elevation.
type Profile3D struct {
	inner *core.Profile3D
}

// SimulateSphericalSession simulates one sweep per elevation ring (degrees
// within ±60) for a virtual user.
func SimulateSphericalSession(u VirtualUser, quality GestureQuality, elevations []float64) (map[float64]SessionInput, error) {
	v := sim.NewVolunteer(u.ID, u.Seed)
	sessions, err := sim.RunSphericalSession(v, sim.SessionConfig{Quality: quality}, elevations)
	if err != nil {
		return nil, err
	}
	out := make(map[float64]SessionInput, len(sessions))
	for elev, s := range sessions {
		in := SessionInput{
			Probe:      s.Probe,
			SampleRate: s.SampleRate,
			IMU:        s.IMU,
			SystemIR:   s.SystemIR,
			SyncOffset: s.SyncOffset,
		}
		for _, m := range s.Measurements {
			in.Stops = append(in.Stops, StopRecording{Time: m.Time, Left: m.Rec.Left, Right: m.Rec.Right})
		}
		out[elev] = in
	}
	return out, nil
}

// PersonalizeSpherical runs the UNIQ pipeline once per elevation ring and
// returns the 3-D profile.
func PersonalizeSpherical(rings map[float64]SessionInput, opt Options) (*Profile3D, error) {
	p, err := core.PersonalizeSpherical(rings, core.PipelineOptions{
		SkipGestureCheck:      opt.SkipGestureCheck,
		DisableRoomTruncation: opt.DisableRoomEchoTruncation,
	})
	if err != nil {
		return nil, err
	}
	return &Profile3D{inner: p}, nil
}

// Render spatializes a mono sound from (azimuth, elevation), both degrees.
func (p *Profile3D) Render(mono []float64, azimuthDeg, elevationDeg float64) (left, right []float64, err error) {
	if p == nil || p.inner == nil {
		return nil, nil, errors.New("uniq: empty 3D profile")
	}
	return p.inner.RenderAt(mono, azimuthDeg, elevationDeg)
}

// Elevations returns the measured ring elevations, ascending.
func (p *Profile3D) Elevations() []float64 {
	if p == nil || p.inner == nil {
		return nil
	}
	return append([]float64(nil), p.inner.Elevations...)
}

// Save writes the 3-D profile (all rings) as JSON.
func (p *Profile3D) Save(w io.Writer) error {
	if p == nil || p.inner == nil {
		return errors.New("uniq: empty 3D profile")
	}
	return p.inner.Encode(w)
}

// Load3D reads a 3-D profile previously written by Save.
func Load3D(r io.Reader) (*Profile3D, error) {
	inner, err := core.Decode3D(r)
	if err != nil {
		return nil, err
	}
	return &Profile3D{inner: inner}, nil
}

// RingProfile returns the 2-D profile of one measured ring.
func (p *Profile3D) RingProfile(elevationDeg float64) (*Profile, error) {
	if p == nil || p.inner == nil {
		return nil, errors.New("uniq: empty 3D profile")
	}
	ring, ok := p.inner.Rings[elevationDeg]
	if !ok {
		return nil, errors.New("uniq: no ring at that elevation")
	}
	return &Profile{
		Table:           ring.Table,
		HeadParams:      ring.HeadParams,
		QualityReport:   "ring profile",
		MeanResidualDeg: ring.MeanResidualDeg,
	}, nil
}
