package uniq

import (
	"math"
	"testing"

	"repro/internal/dsp"
)

func TestMeasureSyncOffsetPublic(t *testing.T) {
	sr := 48000.0
	probe := Chirp(150, 20000, 0.04, sr)
	loop := dsp.FractionalDelay(probe, 0.002*sr)
	got, err := MeasureSyncOffset(loop, probe, sr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.002) > 5e-5 {
		t.Errorf("offset %g, want 0.002", got)
	}
}

func TestCompactPublic(t *testing.T) {
	p, err := GroundTruthProfile(VirtualUser{ID: 2, Seed: 3}, 48000, 1)
	if err != nil {
		t.Fatal(err)
	}
	small := p.Compact(15)
	if small.Table.NumAngles() != 13 {
		t.Fatalf("compact angles %d", small.Table.NumAngles())
	}
	// Rendering still works from a coarse slot.
	l, r, err := small.Render([]float64{1}, 90, true)
	if err != nil || len(l) == 0 || len(r) == 0 {
		t.Fatalf("compact render failed: %v", err)
	}
	var nilP *Profile
	if nilP.Compact(5) != nil {
		t.Error("nil compact should stay nil")
	}
}
