package uniq

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/dsp"
)

func TestEnhanceFromSuppressesInterferer(t *testing.T) {
	if testing.Short() {
		t.Skip("beamforming scenario")
	}
	u := VirtualUser{ID: 8, Seed: 44}
	// Ground-truth profile isolates the beamformer from pipeline error.
	prof, err := GroundTruthProfile(u, 48000, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	target := dsp.WhiteNoise(12000, rng)
	interf := dsp.Music(0.25, 48000, rng)
	tL, tR, err := SimulateAmbientSound(u, target, 45, 48000, 0)
	if err != nil {
		t.Fatal(err)
	}
	iL, iR, err := SimulateAmbientSound(u, interf, 150, 48000, 0)
	if err != nil {
		t.Fatal(err)
	}
	mixL := dsp.Add(tL, iL)
	mixR := dsp.Add(tR, iR)
	enhanced, err := prof.EnhanceFrom(mixL, mixR, 45, 150)
	if err != nil {
		t.Fatal(err)
	}
	leakBefore, _ := dsp.NormXCorrPeak(interf, mixR)
	leakAfter, _ := dsp.NormXCorrPeak(interf, enhanced)
	if leakAfter >= leakBefore {
		t.Errorf("null should reduce interferer leakage: %.3f -> %.3f", leakBefore, leakAfter)
	}
	keepBefore, _ := dsp.NormXCorrPeak(target, mixR)
	keepAfter, _ := dsp.NormXCorrPeak(target, enhanced)
	if keepAfter < keepBefore {
		t.Errorf("target should not degrade: %.3f -> %.3f", keepBefore, keepAfter)
	}
	// Without a null the call still works.
	if _, err := prof.EnhanceFrom(mixL, mixR, 45, -1); err != nil {
		t.Fatal(err)
	}
	var nilP *Profile
	if _, err := nilP.EnhanceFrom(mixL, mixR, 45, -1); err == nil {
		t.Error("nil profile should fail")
	}
}

func TestProfile3DSaveLoadPublic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-ring pipeline")
	}
	u := VirtualUser{ID: 9, Seed: 55}
	rings, err := SimulateSphericalSession(u, GestureGood, []float64{0, 25})
	if err != nil {
		t.Fatal(err)
	}
	p3, err := PersonalizeSpherical(rings, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p3.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load3D(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Elevations()) != 2 {
		t.Fatalf("elevations %v", back.Elevations())
	}
	mono := dsp.Tone(500, 0.02, 48000)
	l1, _, err := p3.Render(mono, 60, 12)
	if err != nil {
		t.Fatal(err)
	}
	l2, _, err := back.Render(mono, 60, 12)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := dsp.NormXCorrPeak(l1, l2)
	if c < 0.999 {
		t.Errorf("render changed across save/load (corr %.4f)", c)
	}
	var nilP *Profile3D
	if err := nilP.Save(&buf); err == nil {
		t.Error("nil 3D profile save should fail")
	}
}
