// Package repro's root benchmark harness: one testing.B per paper table /
// figure, regenerating it on the simulated testbed and reporting its
// headline metrics, plus ablation benches for the design choices called out
// in DESIGN.md.
//
//	go test -bench=. -benchmem
//
// Benches share one lazily-built Study (Fast configuration) so the
// expensive pipeline runs are paid once; each figure's first iteration does
// the real work and reports the metrics the paper plots.
package repro

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/service"
	"repro/internal/sim"
)

var (
	studyOnce sync.Once
	study     *experiments.Study
)

func sharedStudy() *experiments.Study {
	studyOnce.Do(func() {
		study = experiments.NewStudy(experiments.Config{Fast: true, AoATrialsPerVolunteer: 5})
	})
	return study
}

// benchFigure runs one figure generator per iteration and reports its
// metrics.
func benchFigure(b *testing.B, id string, reported ...string) {
	s := sharedStudy()
	b.ResetTimer()
	var res *experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Run(id, s)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, k := range reported {
		if v, ok := res.Metrics[k]; ok {
			b.ReportMetric(v, k)
		}
	}
}

// --- groundwork figures ---

func BenchmarkFig2aPinnaSameUser(b *testing.B) {
	benchFigure(b, "fig2a", "diagonality")
}

func BenchmarkFig2bPinnaCrossUser(b *testing.B) {
	benchFigure(b, "fig2b", "diagonality_cross")
}

func BenchmarkFig5Diffraction(b *testing.B) {
	benchFigure(b, "fig5", "mean_err_diffracted_cm", "mean_err_euclidean_cm")
}

func BenchmarkFig9ChannelEstimation(b *testing.B) {
	benchFigure(b, "fig9", "tap_error_left_us", "tap_error_right_us")
}

func BenchmarkFig16FrequencyResponse(b *testing.B) {
	benchFigure(b, "fig16", "rolloff_50hz_db")
}

// --- evaluation figures ---

func BenchmarkFig17Localization(b *testing.B) {
	benchFigure(b, "fig17", "median_error_deg", "p90_error_deg")
}

func BenchmarkFig18HRIRCorrelation(b *testing.B) {
	benchFigure(b, "fig18", "uniq_left", "global_left", "gain_ratio")
}

func BenchmarkFig19PerVolunteer(b *testing.B) {
	benchFigure(b, "fig19", "min_gain")
}

func BenchmarkFig20SampleHRIRs(b *testing.B) {
	benchFigure(b, "fig20", "best_corr", "average_corr", "worst_corr")
}

func BenchmarkFig21AoAKnown(b *testing.B) {
	benchFigure(b, "fig21", "median_uniq_deg", "median_global_deg", "global_frontback_pct")
}

func BenchmarkFig22AoAUnknown(b *testing.B) {
	benchFigure(b, "fig22", "median_uniq_noise", "median_uniq_speech")
}

func BenchmarkFig22FrontBack(b *testing.B) {
	benchFigure(b, "fig22", "frontback_uniq_avg", "frontback_global_avg")
}

// --- ablations (A1-A6 of DESIGN.md) ---

func BenchmarkAblationFusion(b *testing.B) {
	benchFigure(b, "ablation", "a1_fusion_deg", "a1_imu_deg", "a1_acoustic_deg")
}

func BenchmarkAblationDiffraction(b *testing.B) {
	benchFigure(b, "ablation", "a2_diffraction_us", "a2_straightline_us")
}

func BenchmarkAblationRoomTruncation(b *testing.B) {
	benchFigure(b, "ablation", "a4_truncation_on", "a4_truncation_off")
}

func BenchmarkAblationGesture(b *testing.B) {
	benchFigure(b, "ablation", "a5_rejected", "a5_forced_corr")
}

func BenchmarkAblationSampleCount(b *testing.B) {
	benchFigure(b, "ablation", "a6_stops_9", "a6_stops_19", "a6_stops_37")
}

func BenchmarkAblationNoiseSweep(b *testing.B) {
	benchFigure(b, "ablation", "a7_noise_0.003", "a7_noise_0.3")
}

// --- implemented extensions (paper §7 / §4.5) ---

func BenchmarkExtension3DAndBeamforming(b *testing.B) {
	benchFigure(b, "ext", "e1_matched_corr", "e1_horizontal_corr", "e2_snr_gain_db")
}

// BenchmarkAblationNearFar (A3) measures near-far conversion directly: it
// is asserted with a binaural metric in internal/core's test suite; here we
// time the synthesis stage itself.
func BenchmarkAblationNearFar(b *testing.B) {
	v := sim.NewVolunteer(1, 4242)
	near, err := sim.MeasureGroundTruthNear(v, 48000, 2, 0.32)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SynthesizeFarField(near, v.Head, core.NearFarOptions{Radius: 0.32}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- component microbenchmarks ---

func BenchmarkPipelinePersonalize(b *testing.B) {
	v := sim.NewVolunteer(1, 777)
	sess, err := sim.RunSession(v, sim.SessionConfig{})
	if err != nil {
		b.Fatal(err)
	}
	in := core.SessionInput{
		Probe: sess.Probe, SampleRate: sess.SampleRate,
		IMU: sess.IMU, SystemIR: sess.SystemIR, SyncOffset: sess.SyncOffset,
	}
	for _, m := range sess.Measurements {
		in.Stops = append(in.Stops, core.StopRecording{Time: m.Time, Left: m.Rec.Left, Right: m.Rec.Right})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Personalize(in, core.PipelineOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPersonalizeParallel measures one solve end to end while sweeping
// the pipeline's internal worker pool (PipelineOptions.Workers): the
// per-stop channel-estimation fan-out plus the parallel fusion seeding
// grid. The fusion search is deliberately coarse so the bench exposes the
// fan-out scaling rather than the sequential simplex refinement; the output
// is bit-identical across worker counts (asserted by
// core.TestPersonalizeWorkerDeterminism).
func BenchmarkPersonalizeParallel(b *testing.B) {
	v := sim.NewVolunteer(1, 777)
	sess, err := sim.RunSession(v, sim.SessionConfig{})
	if err != nil {
		b.Fatal(err)
	}
	in := core.SessionInput{
		Probe: sess.Probe, SampleRate: sess.SampleRate,
		IMU: sess.IMU, SystemIR: sess.SystemIR, SyncOffset: sess.SyncOffset,
	}
	for _, m := range sess.Measurements {
		in.Stops = append(in.Stops, core.StopRecording{Time: m.Time, Left: m.Rec.Left, Right: m.Rec.Right})
	}
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opt := core.PipelineOptions{
				Workers: workers,
				Fusion: core.FusionOptions{
					GridPoints: 2,
					MaxEvals:   40,
					Loc:        core.LocalizerOptions{AngleStepDeg: 3, RadiusSteps: 8, BoundaryVertices: 120},
				},
				Gesture: core.GestureLimits{MaxResidualDeg: 15},
			}
			if workers == 1 {
				opt.Workers = -1 // fully sequential baseline
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Personalize(in, opt); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sessions/sec")
		})
	}
}

func BenchmarkSessionSimulation(b *testing.B) {
	v := sim.NewVolunteer(2, 888)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunSession(v, sim.SessionConfig{NumStops: 12}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- serving layer (internal/service) ---

// BenchmarkServiceThroughput measures sessions/sec through the uniqd worker
// pool over the wire: submit b.N pre-simulated sessions via the typed
// client against an httptest server, wait for all jobs to drain. Sub-benches
// sweep the worker count (1, 4, NumCPU) to expose pool scaling; the solve
// uses a deliberately coarse fusion search so the bench exercises the
// serving machinery rather than the full-resolution optimizer.
func BenchmarkServiceThroughput(b *testing.B) {
	v := sim.NewVolunteer(1, 777)
	sess, err := sim.RunSession(v, sim.SessionConfig{NumStops: 9})
	if err != nil {
		b.Fatal(err)
	}
	in := core.SessionInput{
		Probe: sess.Probe, SampleRate: sess.SampleRate,
		IMU: sess.IMU, SystemIR: sess.SystemIR, SyncOffset: sess.SyncOffset,
	}
	for _, m := range sess.Measurements {
		in.Stops = append(in.Stops, core.StopRecording{Time: m.Time, Left: m.Rec.Left, Right: m.Rec.Right})
	}
	pipeline := core.PipelineOptions{
		Fusion: core.FusionOptions{
			GridPoints: 2,
			MaxEvals:   40,
			Loc:        core.LocalizerOptions{AngleStepDeg: 3, RadiusSteps: 8, BoundaryVertices: 120},
		},
		Gesture: core.GestureLimits{MaxResidualDeg: 15},
	}

	workerCounts := []int{1, 4, runtime.NumCPU()}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			svc, err := service.New(service.Config{
				StoreDir:   b.TempDir(),
				Workers:    workers,
				QueueDepth: b.N + workers,
				Pipeline:   pipeline,
			})
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(svc.Handler())
			defer ts.Close()
			client := service.NewClient(ts.URL)
			ctx := context.Background()

			b.ResetTimer()
			ids := make([]string, b.N)
			for i := 0; i < b.N; i++ {
				id, err := client.Submit(ctx, fmt.Sprintf("bench%d", i), in)
				if err != nil {
					b.Fatal(err)
				}
				ids[i] = id
			}
			start := time.Now()
			for _, id := range ids {
				if _, err := client.WaitDone(ctx, id, 20*time.Millisecond); err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(start)
			b.StopTimer()
			b.ReportMetric(float64(b.N)/elapsed.Seconds(), "sessions/sec")
			sdCtx, cancel := context.WithTimeout(ctx, time.Minute)
			defer cancel()
			if err := svc.Shutdown(sdCtx); err != nil {
				b.Fatal(err)
			}
		})
	}
}
